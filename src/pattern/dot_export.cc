#include "pattern/dot_export.h"

namespace {

// DOT string escaping for labels.
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

namespace rtp::pattern {

std::string PatternToDot(const TreePattern& pattern, const Alphabet& alphabet,
                         PatternNodeId context) {
  std::string out = "digraph pattern {\n  rankdir=TB;\n  node [shape=circle];\n";
  for (PatternNodeId w = 0; w < pattern.NumNodes(); ++w) {
    std::string label = w == TreePattern::kRoot ? "/" : "n" + std::to_string(w);
    std::string attrs = "label=\"" + Escape(label) + "\"";
    for (size_t i = 0; i < pattern.selected().size(); ++i) {
      if (pattern.selected()[i].node == w) {
        attrs += ", shape=doublecircle";
        attrs += ", xlabel=\"$" + std::to_string(i) +
                 (pattern.selected()[i].equality == EqualityType::kValue
                      ? "[V]"
                      : "[N]") +
                 "\"";
        break;
      }
    }
    if (w == context) attrs += ", style=filled, fillcolor=lightgray";
    out += "  w" + std::to_string(w) + " [" + attrs + "];\n";
  }
  for (PatternNodeId w = 1; w < pattern.NumNodes(); ++w) {
    out += "  w" + std::to_string(pattern.parent(w)) + " -> w" +
           std::to_string(w) + " [label=\"" +
           Escape(pattern.edge(w).ToString(alphabet)) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace rtp::pattern

namespace rtp::automata {

std::string AutomatonToDot(const HedgeAutomaton& automaton,
                           const Alphabet& alphabet) {
  std::string out = "digraph automaton {\n  node [shape=box];\n";
  std::vector<bool> accepting(automaton.NumStates(), false);
  for (StateId q : automaton.root_accepting()) accepting[q] = true;
  for (StateId q = 0; q < automaton.NumStates(); ++q) {
    std::string attrs = "label=\"q" + std::to_string(q) + "\"";
    if (accepting[q]) attrs += ", peripheries=2";
    if (automaton.mark(q)) attrs += ", style=filled, fillcolor=lightyellow";
    out += "  q" + std::to_string(q) + " [" + attrs + "];\n";
  }
  for (size_t i = 0; i < automaton.transitions().size(); ++i) {
    const auto& t = automaton.transitions()[i];
    std::string guard;
    if (t.guard.kind == Guard::Kind::kLabel) {
      guard = alphabet.Name(t.guard.label);
    } else if (t.guard.excluded.empty()) {
      guard = "*";
    } else {
      guard = "* \\\\ {";
      for (size_t k = 0; k < t.guard.excluded.size(); ++k) {
        if (k > 0) guard += ",";
        guard += alphabet.Name(t.guard.excluded[k]);
      }
      guard += "}";
    }
    out += "  t" + std::to_string(i) + " [shape=point];\n";
    out += "  t" + std::to_string(i) + " -> q" + std::to_string(t.target) +
           " [label=\"" + Escape(guard) + " / H" +
           std::to_string(t.horizontal.NumStates()) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace rtp::automata
