#include "update/update_ops.h"

#include <algorithm>

namespace rtp::update {

using xml::Document;
using xml::kInvalidNode;
using xml::NodeId;
using xml::NodeType;

namespace {

// Validates that `op` can be applied at `n` before any mutation happens.
Status CheckApplicable(const Document& doc, NodeId n,
                       const UpdateOperation& op) {
  if (std::holds_alternative<SetValue>(op)) {
    if (doc.type(n) == NodeType::kElement) {
      return InvalidArgumentError(
          "SetValue requires an attribute or text node, got element <" +
          doc.label_name(n) + ">");
    }
  } else if (std::holds_alternative<AppendChild>(op) ||
             std::holds_alternative<DeleteChildren>(op)) {
    if (doc.type(n) != NodeType::kElement) {
      return InvalidArgumentError(
          "operation requires an element node, got a leaf");
    }
  } else if (std::holds_alternative<ReplaceSubtree>(op) ||
             std::holds_alternative<DeleteSelf>(op)) {
    if (n == doc.root()) {
      return InvalidArgumentError("cannot replace or delete the document root");
    }
  }
  return Status::OK();
}

void TransformSubtreeValues(Document* doc, NodeId n,
                            const TransformValues& op) {
  doc->VisitFrom(n, [doc, &op](NodeId v) {
    if (doc->type(v) != NodeType::kElement) {
      doc->set_value(v, op.fn(doc->value(v)));
    }
    return true;
  });
}

// Returns the post-update root of the modified region.
NodeId ApplyAt(Document* doc, NodeId n, const UpdateOperation& op) {
  if (const auto* replace = std::get_if<ReplaceSubtree>(&op)) {
    return doc->ReplaceSubtree(n, *replace->replacement, replace->root);
  }
  if (const auto* set_value = std::get_if<SetValue>(&op)) {
    doc->set_value(n, set_value->value);
    return n;
  }
  if (const auto* transform = std::get_if<TransformValues>(&op)) {
    TransformSubtreeValues(doc, n, *transform);
    return n;
  }
  if (const auto* append = std::get_if<AppendChild>(&op)) {
    doc->CopySubtree(*append->subtree, append->root, n);
    return n;
  }
  if (std::holds_alternative<DeleteChildren>(op)) {
    for (NodeId c : doc->Children(n)) doc->DetachSubtree(c);
    return n;
  }
  RTP_CHECK(std::holds_alternative<DeleteSelf>(op));
  NodeId parent = doc->parent(n);
  doc->DetachSubtree(n);
  return parent;
}

}  // namespace

StatusOr<ApplyStats> ApplyOperationAt(Document* doc,
                                      const std::vector<NodeId>& nodes,
                                      const UpdateOperation& operation) {
  // Drop nodes nested below another selected node: in preorder, a node is
  // nested iff the most recent kept node is one of its ancestors.
  std::vector<NodeId> ordered = nodes;
  std::sort(ordered.begin(), ordered.end(), [doc](NodeId a, NodeId b) {
    return doc->DocumentOrderLess(a, b);
  });
  ordered.erase(std::unique(ordered.begin(), ordered.end()), ordered.end());
  std::vector<NodeId> roots;
  for (NodeId n : ordered) {
    if (!roots.empty() && doc->IsAncestorOrSelf(roots.back(), n)) continue;
    roots.push_back(n);
  }
  for (NodeId n : roots) {
    RTP_RETURN_IF_ERROR(CheckApplicable(*doc, n, operation));
  }
  // Reverse document order keeps earlier nodes' positions stable.
  std::sort(roots.begin(), roots.end(), [doc](NodeId a, NodeId b) {
    return doc->DocumentOrderLess(b, a);
  });
  ApplyStats stats;
  stats.nodes_updated = roots.size();
  stats.updated_roots.reserve(roots.size());
  for (NodeId n : roots) {
    stats.updated_roots.push_back(ApplyAt(doc, n, operation));
  }
  return stats;
}

StatusOr<ApplyStats> ApplyUpdate(Document* doc, const Update& update) {
  if (update.update_class == nullptr) {
    return InvalidArgumentError("update has no update class");
  }
  std::vector<NodeId> nodes = update.update_class->SelectNodes(*doc);
  return ApplyOperationAt(doc, nodes, update.operation);
}

}  // namespace rtp::update
