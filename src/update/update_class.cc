#include "update/update_class.h"

#include <algorithm>
#include <set>

namespace rtp::update {

StatusOr<UpdateClass> UpdateClass::Create(pattern::TreePattern pattern) {
  RTP_RETURN_IF_ERROR(pattern.Validate());
  if (pattern.selected().empty()) {
    return InvalidArgumentError(
        "an update class must select at least one node to update");
  }
  return UpdateClass(std::move(pattern));
}

StatusOr<UpdateClass> UpdateClass::FromParsed(pattern::ParsedPattern parsed) {
  return Create(std::move(parsed.pattern));
}

bool UpdateClass::SelectedAreLeaves() const {
  for (const pattern::SelectedNode& s : pattern_.selected()) {
    if (!pattern_.IsLeaf(s.node)) return false;
  }
  return true;
}

std::vector<xml::NodeId> UpdateClass::SelectNodes(
    const xml::Document& doc) const {
  pattern::MatchTables tables = pattern::MatchTables::Build(pattern_, doc);
  pattern::MappingEnumerator enumerator(tables);
  std::set<xml::NodeId> nodes;
  enumerator.ForEach([&](const pattern::Mapping& m) {
    for (const pattern::SelectedNode& s : pattern_.selected()) {
      nodes.insert(m.image[s.node]);
    }
    return true;
  });
  std::vector<xml::NodeId> out(nodes.begin(), nodes.end());
  std::sort(out.begin(), out.end(), [&doc](xml::NodeId a, xml::NodeId b) {
    return doc.DocumentOrderLess(a, b);
  });
  return out;
}

}  // namespace rtp::update
