#include "update/update_class.h"

#include <algorithm>
#include <set>

namespace rtp::update {

StatusOr<UpdateClass> UpdateClass::Create(pattern::TreePattern pattern) {
  RTP_RETURN_IF_ERROR(pattern.Validate());
  if (pattern.selected().empty()) {
    return InvalidArgumentError(
        "an update class must select at least one node to update");
  }
  return UpdateClass(std::move(pattern));
}

StatusOr<UpdateClass> UpdateClass::FromParsed(pattern::ParsedPattern parsed) {
  return Create(std::move(parsed.pattern));
}

bool UpdateClass::SelectedAreLeaves() const {
  for (const pattern::SelectedNode& s : pattern_.selected()) {
    if (!pattern_.IsLeaf(s.node)) return false;
  }
  return true;
}

std::vector<xml::NodeId> UpdateClass::SelectNodes(
    const xml::Document& doc) const {
  std::shared_ptr<const xml::DocIndex> snapshot = doc.Snapshot();
  return SelectNodes(*snapshot);
}

std::vector<xml::NodeId> UpdateClass::SelectNodes(
    const xml::DocIndex& index) const {
  const xml::Document& doc = index.doc();
  pattern::MatchTables tables = pattern::MatchTables::Build(pattern_, index);
  pattern::MappingEnumerator enumerator(tables);
  std::set<xml::NodeId> nodes;
  enumerator.ForEach([&](const pattern::Mapping& m) {
    for (const pattern::SelectedNode& s : pattern_.selected()) {
      nodes.insert(m.image[s.node]);
    }
    return true;
  });
  std::vector<xml::NodeId> out(nodes.begin(), nodes.end());
  std::sort(out.begin(), out.end(), [&doc](xml::NodeId a, xml::NodeId b) {
    return doc.DocumentOrderLess(a, b);
  });
  return out;
}

}  // namespace rtp::update
