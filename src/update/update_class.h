#ifndef RTP_UPDATE_UPDATE_CLASS_H_
#define RTP_UPDATE_UPDATE_CLASS_H_

#include <vector>

#include "common/status.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "pattern/tree_pattern.h"
#include "xml/doc_index.h"
#include "xml/document.h"

namespace rtp::update {

// A class of updates U (Section 4): a regular tree pattern whose selected
// nodes are the nodes to be updated. Two updates belong to the same class
// iff they share this node-selecting pattern; the concrete modification u
// performed at the selected nodes is arbitrary (see update_ops.h).
class UpdateClass {
 public:
  // The pattern needs at least one selected node. Equality types on
  // selected nodes are ignored.
  static StatusOr<UpdateClass> Create(pattern::TreePattern pattern);
  static StatusOr<UpdateClass> FromParsed(pattern::ParsedPattern parsed);

  const pattern::TreePattern& pattern() const { return pattern_; }

  // True iff every selected node is a leaf of the template — the
  // restriction under which the paper's independence criterion applies
  // (Section 5): it guarantees the U-trace survives the update.
  bool SelectedAreLeaves() const;

  // Distinct document nodes selected for update, in document order. The
  // DocIndex overload evaluates over a shared prebuilt snapshot (see
  // xml/doc_index.h); results are identical.
  std::vector<xml::NodeId> SelectNodes(const xml::Document& doc) const;
  std::vector<xml::NodeId> SelectNodes(const xml::DocIndex& index) const;

 private:
  explicit UpdateClass(pattern::TreePattern pattern)
      : pattern_(std::move(pattern)) {}

  pattern::TreePattern pattern_;
};

}  // namespace rtp::update

#endif  // RTP_UPDATE_UPDATE_CLASS_H_
