#ifndef RTP_UPDATE_UPDATE_OPS_H_
#define RTP_UPDATE_UPDATE_OPS_H_

#include <functional>
#include <memory>
#include <string>
#include <variant>

#include "common/status.h"
#include "update/update_class.h"
#include "xml/document.h"

namespace rtp::update {

// Concrete update operations u. The paper models every update as replacing
// the subtree rooted at a selected node by a new subtree (insertions and
// deletions being updates of the parent node); the operations here are
// convenient special cases of that model.

// Replaces the subtree rooted at the selected node by a copy of
// replacement(root).
struct ReplaceSubtree {
  std::shared_ptr<const xml::Document> replacement;
  xml::NodeId root;
};

// Sets the string value of a selected attribute/text leaf.
struct SetValue {
  std::string value;
};

// Rewrites the value of every attribute/text node in the selected subtree
// (the selected node itself if it is a leaf). Used for value-dependent
// updates such as the paper's q1 ("decrease the level to the level just
// below").
struct TransformValues {
  std::function<std::string(std::string_view)> fn;
};

// Appends a copy of subtree(root) as the last child of the selected
// element node. The paper's q2 ("add a child node comment to the level
// node") is of this form.
struct AppendChild {
  std::shared_ptr<const xml::Document> subtree;
  xml::NodeId root;
};

// Removes all children of the selected element node.
struct DeleteChildren {};

// Detaches the selected subtree entirely. In the paper's model this is an
// update of the parent node; provided here as a convenience.
struct DeleteSelf {};

using UpdateOperation =
    std::variant<ReplaceSubtree, SetValue, TransformValues, AppendChild,
                 DeleteChildren, DeleteSelf>;

// An update q = u o U: the selecting class plus the operation performed at
// each selected node.
struct Update {
  const UpdateClass* update_class = nullptr;  // not owned
  UpdateOperation operation;
};

struct ApplyStats {
  // Selected nodes, after dropping those nested below another selected
  // node (the ancestor's replacement subsumes them).
  size_t nodes_updated = 0;
  // Post-update roots of the modified regions: the updated nodes
  // themselves for in-place operations, the replacement copies for
  // ReplaceSubtree, the parents for DeleteSelf. Consumed by incremental
  // FD maintenance (fd/fd_index.h).
  std::vector<xml::NodeId> updated_roots;
};

// Applies `update` to `doc` in place. Selected nodes are processed in
// reverse document order; a selected node with a selected proper ancestor
// is skipped. Fails (without modifying the document) if the operation is
// incompatible with some selected node's type, e.g. SetValue on an element.
StatusOr<ApplyStats> ApplyUpdate(xml::Document* doc, const Update& update);

// Applies the operation at explicitly given nodes (no pattern evaluation).
StatusOr<ApplyStats> ApplyOperationAt(xml::Document* doc,
                                      const std::vector<xml::NodeId>& nodes,
                                      const UpdateOperation& operation);

}  // namespace rtp::update

#endif  // RTP_UPDATE_UPDATE_OPS_H_
