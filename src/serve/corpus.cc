#include "serve/corpus.h"

namespace rtp::serve {

Tenant::Tenant(std::string tenant_name) : name(std::move(tenant_name)) {
#ifndef RTP_OBS_DISABLED
  obs::MetricsRegistry& registry = obs::Registry();
  m_requests =
      registry.FindOrCreateCounter("serve.tenant." + name + ".requests");
  m_errors = registry.FindOrCreateCounter("serve.tenant." + name + ".errors");
  m_trips = registry.FindOrCreateCounter("serve.tenant." + name + ".trips");
#endif
}

std::shared_ptr<Tenant> TenantRegistry::GetOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  auto tenant = std::make_shared<Tenant>(name);
  tenants_.emplace(name, tenant);
  RTP_OBS_GAUGE_SET("serve.tenants", tenants_.size());
  return tenant;
}

std::shared_ptr<Tenant> TenantRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Tenant>> TenantRegistry::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Tenant>> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(tenant);
  return out;  // std::map iterates sorted by name
}

}  // namespace rtp::serve
