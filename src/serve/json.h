#ifndef RTP_SERVE_JSON_H_
#define RTP_SERVE_JSON_H_

// Minimal JSON for the rtpd wire protocol (docs/SERVING.md).
//
// The library deliberately has no external dependencies, so the serving
// layer carries its own JSON value: enough of RFC 8259 for line-delimited
// request/response objects, hardened for untrusted input (nesting cap,
// strict number/escape validation, no trailing garbage) because every byte
// a client sends goes through Parse. Objects preserve insertion order, so
// serialization is deterministic — the golden wire-protocol transcripts
// (tests/serve_protocol_test.cc) depend on that.
//
// Numbers are stored as double; the protocol only carries ids, counts and
// budgets, all far below 2^53, so the lossless-integer range of a double
// covers them. Serialization renders integral values without a decimal
// point, so integer fields round-trip byte-identically.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rtp::serve {

class JsonValue {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  // Parses exactly one JSON value spanning the whole input (trailing
  // whitespace allowed, anything else is a PARSE_ERROR). `max_depth` caps
  // array/object nesting; exceeding it returns RESOURCE_EXHAUSTED, the
  // same contract as the library's recursive parsers.
  static StatusOr<JsonValue> Parse(std::string_view text,
                                   size_t max_depth = 64);

  // Compact single-line serialization (no spaces, keys in insertion
  // order). Parse(Serialize(v)) reproduces v exactly.
  std::string Serialize() const;

  // Constructors for building values.
  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue Int(int64_t i) {
    return Number(static_cast<double>(i));
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; the value must hold the matching kind.
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  int64_t int_value() const { return static_cast<int64_t>(number_); }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  // Array building.
  JsonValue& Push(JsonValue item) {
    array_.push_back(std::move(item));
    return *this;
  }

  // Object building; duplicate keys are appended as-is (the protocol
  // never emits duplicates, and Find returns the first).
  JsonValue& Add(std::string key, JsonValue value) {
    object_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  // First member named `key`, or nullptr (also for non-objects).
  const JsonValue* Find(std::string_view key) const;

  // Convenience typed lookups with defaults (missing key / wrong kind
  // yield the default — the decoder validates kinds where it matters).
  int64_t FindInt(std::string_view key, int64_t def = 0) const;
  bool FindBool(std::string_view key, bool def = false) const;
  std::string FindString(std::string_view key,
                         const std::string& def = "") const;

  // Structural equality; object member *order is ignored* so golden
  // transcripts stay valid across serializer reorderings. A string value
  // "*" in `pattern` (this) matches anything in `other` — the transcript
  // wildcard for volatile fields like trip messages.
  bool MatchesWithWildcards(const JsonValue& other) const;

  static void AppendEscaped(std::string* out, std::string_view s);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace rtp::serve

#endif  // RTP_SERVE_JSON_H_
