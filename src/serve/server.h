#ifndef RTP_SERVE_SERVER_H_
#define RTP_SERVE_SERVER_H_

// rtpd — resident multi-tenant query service (docs/SERVING.md).
//
// A Server listens on a local AF_UNIX stream socket and speaks the
// line-delimited JSON protocol of serve/protocol.h. Architecture:
//
//   * One accept thread plus one thread per connection. Connection
//     threads only do I/O and framing; the heavy ops (load, eval,
//     checkfd, matrix) run as tasks on a shared rtp::exec::ThreadPool,
//     admitted with TrySubmit — a full queue sheds the request with a
//     RESOURCE_EXHAUSTED response instead of stacking up blocked threads.
//   * State lives in a TenantRegistry (serve/corpus.h): per-tenant
//     alphabet + named pre-indexed documents, exclusive-locked for parse
//     phases and shared-locked for evaluation, so one tenant's load never
//     stalls another tenant's queries.
//   * Every request runs under the guard machinery: the effective budget
//     is the request's, else the tenant default (quota op), else the
//     server default. Deadlines are anchored at request *arrival* (queue
//     wait counts). Each connection owns a guard::CancelToken that the
//     connection thread cancels when the peer disconnects mid-request, so
//     abandoned work drains promptly. A trip degrades only the offending
//     request: the response carries the resource status and the process
//     (including the warm AutomatonCache) is untouched — budget-limited
//     matrix requests deliberately bypass the shared cache, which must
//     never memoize partially-built automata.
//   * Observability: per-request QueryProfile on demand ("profile":true),
//     serve.* counters/histograms, per-tenant serve.tenant.<name>.*
//     counters, plus the library's own metrics.
//
// Determinism contract: responses for load/eval/checkfd/matrix are
// byte-identical to the equivalent serial library calls (eval tuples are
// sorted by document order and serialized with WriteXmlSubtree, exactly
// like rtp_cli), which is what the end-to-end battery in
// tests/serve_test.cc checks against its in-process oracle.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "guard/guard.h"
#include "serve/corpus.h"
#include "serve/protocol.h"

namespace rtp::serve {

struct ServerOptions {
  // Filesystem path of the AF_UNIX socket. A stale socket file from a
  // previous run is replaced.
  std::string socket_path;
  // Worker threads for request execution (not connection I/O).
  int jobs = 2;
  // Tasks admitted but not yet started before TrySubmit sheds load.
  // 0 is the degenerate always-shed configuration: every pooled op is
  // refused with a shed response (used by the overload transcript and
  // tests; a real deployment wants a positive capacity).
  size_t queue_capacity = 1024;
  // A connection that stays silent this long is reaped (closed) by its
  // connection thread, so stalled peers cannot pin threads forever.
  // 0 = never reap (the historical behavior; in-process tests keep it).
  int idle_timeout_ms = 0;
  // Ceiling for the retry_after_ms hint carried by shed responses (the
  // hint itself scales with the instantaneous queue depth).
  int max_retry_after_ms = 1000;
  // A request line longer than this is rejected with RESOURCE_EXHAUSTED
  // and skipped (the connection survives).
  size_t max_line_bytes = 1 << 20;
  // Budget for requests that carry none and whose tenant has no default.
  guard::ExecutionBudget default_budget;
};

class Server {
 public:
  // Binds, listens, and starts the accept thread. The returned server is
  // serving when this returns.
  static StatusOr<std::unique_ptr<Server>> Start(const ServerOptions& options);

  // Stops and joins everything (idempotent with Stop()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Blocks until a shutdown request arrives or Stop() is called.
  void Wait();
  // Bounded Wait: true when the server has been asked to stop.
  bool WaitFor(int timeout_ms);

  // Initiates shutdown: stops accepting, shuts down live connections
  // (in-flight tasks run to completion — their cancel tokens fire, so
  // guarded work exits promptly), joins all threads, removes the socket
  // file. Safe to call from any thread; idempotent.
  void Stop();

  // Graceful drain (SIGTERM path): immediately unlinks the socket so new
  // connects fail, lets in-flight requests finish and idle connections
  // close on their next poll tick, waits up to grace_ms for every
  // connection to wind down, then Stop()s (forcing any stragglers).
  // Safe to call from any thread; idempotent (later calls just Stop()).
  void Drain(int grace_ms);

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Connection;

  explicit Server(ServerOptions options);

  Status Listen();
  void AcceptLoop();
  void ServeConnection(Connection* conn);
  // Frames one request line into one response line.
  std::string HandleLine(Connection* conn, const std::string& line);
  // Dispatches a decoded request (runs on a pool worker for heavy ops).
  JsonValue HandleRequest(Connection* conn, const Request& req,
                          int64_t arrival_ns);

  JsonValue HandleLoad(Tenant& tenant, const Request& req,
                       const guard::ExecutionBudget& budget,
                       guard::CancelToken* cancel, int64_t arrival_ns);
  JsonValue HandleEval(Tenant& tenant, const Request& req,
                       const guard::ExecutionBudget& budget,
                       guard::CancelToken* cancel, int64_t arrival_ns);
  JsonValue HandleCheckFd(Tenant& tenant, const Request& req,
                          const guard::ExecutionBudget& budget,
                          guard::CancelToken* cancel, int64_t arrival_ns);
  JsonValue HandleMatrix(Tenant& tenant, const Request& req,
                         const guard::ExecutionBudget& budget,
                         guard::CancelToken* cancel);
  JsonValue HandleStats(const Request& req);
  JsonValue HandleDrop(Tenant& tenant, const Request& req);
  JsonValue HandleQuota(Tenant& tenant, const Request& req);

  // Backoff hint for shed responses: grows with the instantaneous pool
  // queue depth, capped at options_.max_retry_after_ms.
  int64_t RetryAfterMsHint() const;

  const ServerOptions options_;

  int listen_fd_ = -1;
  // Self-pipe that wakes the accept loop's poll on Stop().
  int wake_pipe_[2] = {-1, -1};

  std::unique_ptr<exec::ThreadPool> pool_;
  TenantRegistry tenants_;

  std::mutex mu_;
  std::condition_variable stop_cv_;
  std::atomic<bool> draining_{false};
  bool stop_requested_ = false;
  bool stopped_ = false;  // Stop() ran to completion
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace rtp::serve

#endif  // RTP_SERVE_SERVER_H_
