#include "serve/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace rtp::serve {
namespace {

// Opens and connects an AF_UNIX stream socket. All failures are
// UNAVAILABLE: "the server cannot be reached" is exactly what retries
// and load harnesses need to distinguish from op-level errors.
StatusOr<int> ConnectFd(const std::string& socket_path) {
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("invalid socket path '" + socket_path + "'");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket(): ") + strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status status = UnavailableError("cannot connect to rtpd at '" +
                                     socket_path + "': " + strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

bool IsTransportCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kTransportError;
}

// Per-kind injection counters; one macro call site per kind so each
// caches its own counter pointer.
void CountInjectedFault(chaos::FaultKind kind) {
  switch (kind) {
    case chaos::FaultKind::kNone:
      break;
    case chaos::FaultKind::kConnectRefused:
      RTP_OBS_COUNT("serve.faults.injected.connect_refused");
      break;
    case chaos::FaultKind::kReadStall:
      RTP_OBS_COUNT("serve.faults.injected.read_stall");
      break;
    case chaos::FaultKind::kWriteStall:
      RTP_OBS_COUNT("serve.faults.injected.write_stall");
      break;
    case chaos::FaultKind::kTornWrite:
      RTP_OBS_COUNT("serve.faults.injected.torn_write");
      break;
    case chaos::FaultKind::kCorruptByte:
      RTP_OBS_COUNT("serve.faults.injected.corrupt_byte");
      break;
    case chaos::FaultKind::kPrematureClose:
      RTP_OBS_COUNT("serve.faults.injected.premature_close");
      break;
    case chaos::FaultKind::kResponseDelay:
      RTP_OBS_COUNT("serve.faults.injected.response_delay");
      break;
  }
}

}  // namespace

bool IsIdempotentOp(std::string_view op) {
  return op == "eval" || op == "checkfd" || op == "matrix" || op == "stats";
}

StatusOr<Client> Client::Connect(const std::string& socket_path,
                                 const ClientOptions& options) {
  RTP_ASSIGN_OR_RETURN(int fd, ConnectFd(socket_path));
  Client client(fd, socket_path, options);
  client.ApplySocketTimeouts(
      options.call_timeout_ms > 0
          ? guard::MonotonicNowNs() +
                int64_t{options.call_timeout_ms} * 1'000'000
          : 0);
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      read_buffer_(std::move(other.read_buffer_)),
      socket_path_(std::move(other.socket_path_)),
      options_(other.options_),
      jitter_(other.jitter_),
      retries_(other.retries_),
      reconnects_(other.reconnects_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    read_buffer_ = std::move(other.read_buffer_);
    socket_path_ = std::move(other.socket_path_);
    options_ = other.options_;
    jitter_ = other.jitter_;
    retries_ = other.retries_;
    reconnects_ = other.reconnects_;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::CloseBroken() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

void Client::ApplySocketTimeouts(int64_t deadline_ns) {
  if (fd_ < 0 || deadline_ns <= 0) return;
  int64_t remaining_ns = deadline_ns - guard::MonotonicNowNs();
  // Clamp to at least 1ms: a 0 timeval means "block forever" to the
  // kernel, the opposite of an expired deadline.
  remaining_ns = std::max<int64_t>(remaining_ns, 1'000'000);
  struct timeval tv;
  tv.tv_sec = remaining_ns / 1'000'000'000;
  tv.tv_usec = (remaining_ns % 1'000'000'000) / 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Status Client::Reconnect(int64_t deadline_ns) {
  CloseBroken();
  RTP_ASSIGN_OR_RETURN(int fd, ConnectFd(socket_path_));
  fd_ = fd;
  ++reconnects_;
  ApplySocketTimeouts(deadline_ns);
  return Status::OK();
}

Status Client::SendLine(const std::string& line) {
  if (fd_ < 0) return FailedPreconditionError("client is closed");
  std::string framed = line;
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return UnavailableError("send timed out (call deadline)");
      }
      return UnavailableError(std::string("send(): ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<std::string> Client::ReadLine() {
  if (fd_ < 0) return FailedPreconditionError("client is closed");
  char chunk[4096];
  while (true) {
    size_t nl = read_buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = read_buffer_.substr(0, nl);
      read_buffer_.erase(0, nl + 1);
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return UnavailableError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return UnavailableError("receive timed out (call deadline)");
      }
      return UnavailableError(std::string("recv(): ") + strerror(errno));
    }
    read_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<JsonValue> Client::CallOnce(const Request& req,
                                     const chaos::FaultDecision& fault,
                                     int64_t deadline_ns,
                                     int64_t* retry_after_ms) {
  *retry_after_ms = 0;
  if (!fault.none()) CountInjectedFault(fault.kind);
  if (fault.kind == chaos::FaultKind::kConnectRefused) {
    // The attempt behaves as if connect() had been refused: nothing goes
    // on the wire, and the connection must be re-established.
    CloseBroken();
    return UnavailableError("injected fault: connect refused");
  }
  if (fd_ < 0) RTP_RETURN_IF_ERROR(Reconnect(deadline_ns));
  if (deadline_ns > 0) {
    if (guard::MonotonicNowNs() >= deadline_ns) {
      return UnavailableError("call deadline exhausted before send");
    }
    ApplySocketTimeouts(deadline_ns);
  }

  Status sent = fault.none()
                    ? SendLine(EncodeRequest(req).Serialize())
                    : chaos::ShimSendLine(fd_, EncodeRequest(req).Serialize(),
                                          fault);
  if (!sent.ok()) {
    if (IsTransportCode(sent.code())) CloseBroken();
    return sent;
  }
  if (fault.kind == chaos::FaultKind::kPrematureClose) {
    CloseBroken();
    return UnavailableError("injected fault: connection closed after send");
  }
  if (fault.kind == chaos::FaultKind::kReadStall) {
    // The response never arrives in time; the stalled connection is
    // abandoned (its late response must not be read by the next call).
    CloseBroken();
    return UnavailableError("injected fault: response stalled past deadline");
  }

  auto line_or = ReadLine();
  if (!line_or.ok()) {
    if (IsTransportCode(line_or.status().code())) CloseBroken();
    return line_or.status();
  }
  auto response_or = JsonValue::Parse(*line_or);
  if (!response_or.ok()) {
    // Bytes arrived but do not frame: the stream can no longer be
    // trusted request-for-response, so drop the connection.
    CloseBroken();
    return TransportError("unparseable response line: " +
                          response_or.status().message());
  }
  JsonValue response = std::move(response_or).value();
  if (response.FindInt("id") != req.id) {
    CloseBroken();
    return TransportError("response id mismatch (sent " +
                          std::to_string(req.id) + ", got '" + *line_or +
                          "')");
  }
  if (fault.kind == chaos::FaultKind::kResponseDelay) {
    chaos::SleepMs(fault.delay_ms);
  }
  Status status = ResponseStatus(response);
  if (!status.ok()) {
    *retry_after_ms = ResponseRetryAfterMs(response);
    return status;
  }
  return response;
}

StatusOr<JsonValue> Client::Call(Request req,
                                 const chaos::FaultDecision& fault) {
  if (req.id == 0) req.id = next_id_++;
  int64_t deadline_ns =
      options_.call_timeout_ms > 0
          ? guard::MonotonicNowNs() +
                int64_t{options_.call_timeout_ms} * 1'000'000
          : 0;
  const bool idempotent = IsIdempotentOp(req.op);
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  int backoff_ms = std::max(1, options_.retry.initial_backoff_ms);

  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Chaos applies to the first attempt only: retries run clean, so the
    // injection count per op is exactly one draw regardless of outcome.
    int64_t hint_ms = 0;
    auto result = CallOnce(req, attempt == 0 ? fault : chaos::FaultDecision{},
                           deadline_ns, &hint_ms);
    if (result.ok()) {
      if (attempt > 0) RTP_OBS_COUNT("serve.retries.recovered");
      return result;
    }
    last = result.status();
    bool transport = IsTransportCode(last.code());
    bool shed_with_hint =
        last.code() == StatusCode::kResourceExhausted && hint_ms > 0;
    if (!idempotent || (!transport && !shed_with_hint) ||
        attempt + 1 >= max_attempts) {
      break;
    }
    // Decorrelated jitter: sleep ~ U[initial, 3 * previous], capped. A
    // shed hint raises the floor so a congested server gets its asked-for
    // breathing room.
    int initial = std::max(1, options_.retry.initial_backoff_ms);
    int span = std::max(1, backoff_ms * 3 - initial + 1);
    int sleep_ms =
        initial + static_cast<int>(jitter_.Below(static_cast<uint64_t>(span)));
    sleep_ms = std::min(sleep_ms, options_.retry.max_backoff_ms);
    if (shed_with_hint) {
      sleep_ms = std::max(
          sleep_ms,
          static_cast<int>(std::min<int64_t>(
              hint_ms, options_.retry.max_backoff_ms)));
    }
    if (deadline_ns > 0 &&
        guard::MonotonicNowNs() + int64_t{sleep_ms} * 1'000'000 >=
            deadline_ns) {
      break;  // no budget left for another attempt
    }
    chaos::SleepMs(static_cast<uint32_t>(sleep_ms));
    backoff_ms = std::min(std::max(sleep_ms, initial),
                          std::max(1, options_.retry.max_backoff_ms));
    ++retries_;
    RTP_OBS_COUNT("serve.retries.attempts");
  }
  if (IsTransportCode(last.code()) && max_attempts > 1 && idempotent) {
    RTP_OBS_COUNT("serve.retries.exhausted");
  }
  return last;
}

namespace {

Request BaseRequest(std::string op, std::string tenant,
                    const CallOptions& options) {
  Request req;
  req.op = std::move(op);
  req.tenant = std::move(tenant);
  if (options.budget.Limited()) {
    req.budget = options.budget;
    req.has_budget = true;
  }
  req.profile = options.profile;
  return req;
}

}  // namespace

Status Client::Load(const std::string& tenant, const std::string& doc,
                    const std::string& xml_text, const CallOptions& options) {
  Request req = BaseRequest("load", tenant, options);
  req.doc = doc;
  req.text = xml_text;
  return Call(std::move(req), options.fault).status();
}

StatusOr<EvalResult> Client::Eval(const std::string& tenant,
                                  const std::string& doc,
                                  const std::string& pattern_text,
                                  const CallOptions& options) {
  Request req = BaseRequest("eval", tenant, options);
  req.doc = doc;
  req.text = pattern_text;
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req), options.fault));
  const JsonValue* tuples = response.Find("tuples");
  if (tuples == nullptr || !tuples->is_array()) {
    return TransportError("eval response without 'tuples' array");
  }
  EvalResult result;
  result.tuples.reserve(tuples->array_items().size());
  for (const JsonValue& row : tuples->array_items()) {
    if (!row.is_array()) return TransportError("malformed eval tuple row");
    std::vector<std::string> tuple;
    tuple.reserve(row.array_items().size());
    for (const JsonValue& item : row.array_items()) {
      if (!item.is_string()) return TransportError("malformed eval tuple");
      tuple.push_back(item.string_value());
    }
    result.tuples.push_back(std::move(tuple));
  }
  return result;
}

StatusOr<CheckFdResult> Client::CheckFd(const std::string& tenant,
                                        const std::string& doc,
                                        const std::string& fd_text,
                                        const CallOptions& options) {
  Request req = BaseRequest("checkfd", tenant, options);
  req.doc = doc;
  req.text = fd_text;
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req), options.fault));
  const JsonValue* satisfied = response.Find("satisfied");
  if (satisfied == nullptr || !satisfied->is_bool()) {
    return TransportError("checkfd response without 'satisfied'");
  }
  CheckFdResult result;
  result.satisfied = satisfied->bool_value();
  result.mappings = response.FindInt("mappings");
  result.groups = response.FindInt("groups");
  result.violation = response.FindString("violation");
  return result;
}

StatusOr<MatrixResult> Client::Matrix(
    const std::string& tenant, const std::vector<std::string>& fd_texts,
    const std::vector<std::string>& class_texts,
    const std::string& schema_text, const CallOptions& options) {
  Request req = BaseRequest("matrix", tenant, options);
  req.fds = fd_texts;
  req.classes = class_texts;
  req.schema = schema_text;
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req), options.fault));
  const JsonValue* entries = response.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return TransportError("matrix response without 'entries' array");
  }
  MatrixResult result;
  result.num_fds = static_cast<size_t>(response.FindInt("num_fds"));
  result.num_classes = static_cast<size_t>(response.FindInt("num_classes"));
  result.independent = static_cast<size_t>(response.FindInt("independent"));
  result.cells.reserve(entries->array_items().size());
  for (const JsonValue& entry : entries->array_items()) {
    if (!entry.is_object()) return TransportError("malformed matrix entry");
    MatrixCell cell;
    cell.fd_index = static_cast<size_t>(entry.FindInt("fd"));
    cell.class_index = static_cast<size_t>(entry.FindInt("class"));
    cell.independent = entry.FindBool("independent");
    cell.product_size = entry.FindInt("product_size");
    cell.status = StatusCodeFromName(entry.FindString("status", "OK"));
    result.cells.push_back(cell);
  }
  return result;
}

StatusOr<std::vector<TenantStats>> Client::Stats() {
  Request req;
  req.op = "stats";
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req)));
  const JsonValue* tenants = response.Find("tenants");
  if (tenants == nullptr || !tenants->is_array()) {
    return TransportError("stats response without 'tenants' array");
  }
  std::vector<TenantStats> result;
  result.reserve(tenants->array_items().size());
  for (const JsonValue& t : tenants->array_items()) {
    if (!t.is_object()) return TransportError("malformed tenant stats");
    TenantStats stats;
    stats.name = t.FindString("name");
    stats.docs = t.FindInt("docs");
    stats.requests = t.FindInt("requests");
    stats.errors = t.FindInt("errors");
    stats.trips = t.FindInt("trips");
    result.push_back(std::move(stats));
  }
  return result;
}

StatusOr<bool> Client::Drop(const std::string& tenant,
                            const std::string& doc) {
  Request req;
  req.op = "drop";
  req.tenant = tenant;
  req.doc = doc;
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req)));
  return response.FindBool("dropped");
}

Status Client::Quota(const std::string& tenant,
                     const guard::ExecutionBudget& budget) {
  Request req;
  req.op = "quota";
  req.tenant = tenant;
  req.budget = budget;
  req.has_budget = true;
  return Call(std::move(req)).status();
}

Status Client::Shutdown() {
  Request req;
  req.op = "shutdown";
  return Call(std::move(req)).status();
}

}  // namespace rtp::serve
