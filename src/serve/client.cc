#include "serve/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

namespace rtp::serve {

StatusOr<Client> Client::Connect(const std::string& socket_path) {
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("invalid socket path '" + socket_path + "'");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket(): ") + strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status status = NotFoundError("cannot connect to rtpd at '" +
                                  socket_path + "': " + strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      read_buffer_(std::move(other.read_buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    read_buffer_ = std::move(other.read_buffer_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendLine(const std::string& line) {
  if (fd_ < 0) return FailedPreconditionError("client is closed");
  std::string framed = line;
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("send(): ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<std::string> Client::ReadLine() {
  if (fd_ < 0) return FailedPreconditionError("client is closed");
  char chunk[4096];
  while (true) {
    size_t nl = read_buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = read_buffer_.substr(0, nl);
      read_buffer_.erase(0, nl + 1);
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return InternalError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("recv(): ") + strerror(errno));
    }
    read_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<JsonValue> Client::Call(Request req) {
  if (req.id == 0) req.id = next_id_++;
  RTP_RETURN_IF_ERROR(SendLine(EncodeRequest(req).Serialize()));
  RTP_ASSIGN_OR_RETURN(std::string line, ReadLine());
  RTP_ASSIGN_OR_RETURN(JsonValue response, JsonValue::Parse(line));
  if (response.FindInt("id") != req.id) {
    return InternalError("response id mismatch (sent " +
                         std::to_string(req.id) + ", got '" + line + "')");
  }
  RTP_RETURN_IF_ERROR(ResponseStatus(response));
  return response;
}

namespace {

Request BaseRequest(std::string op, std::string tenant,
                    const CallOptions& options) {
  Request req;
  req.op = std::move(op);
  req.tenant = std::move(tenant);
  if (options.budget.Limited()) {
    req.budget = options.budget;
    req.has_budget = true;
  }
  req.profile = options.profile;
  return req;
}

}  // namespace

Status Client::Load(const std::string& tenant, const std::string& doc,
                    const std::string& xml_text, const CallOptions& options) {
  Request req = BaseRequest("load", tenant, options);
  req.doc = doc;
  req.text = xml_text;
  return Call(std::move(req)).status();
}

StatusOr<EvalResult> Client::Eval(const std::string& tenant,
                                  const std::string& doc,
                                  const std::string& pattern_text,
                                  const CallOptions& options) {
  Request req = BaseRequest("eval", tenant, options);
  req.doc = doc;
  req.text = pattern_text;
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req)));
  const JsonValue* tuples = response.Find("tuples");
  if (tuples == nullptr || !tuples->is_array()) {
    return InternalError("eval response without 'tuples' array");
  }
  EvalResult result;
  result.tuples.reserve(tuples->array_items().size());
  for (const JsonValue& row : tuples->array_items()) {
    if (!row.is_array()) return InternalError("malformed eval tuple row");
    std::vector<std::string> tuple;
    tuple.reserve(row.array_items().size());
    for (const JsonValue& item : row.array_items()) {
      if (!item.is_string()) return InternalError("malformed eval tuple");
      tuple.push_back(item.string_value());
    }
    result.tuples.push_back(std::move(tuple));
  }
  return result;
}

StatusOr<CheckFdResult> Client::CheckFd(const std::string& tenant,
                                        const std::string& doc,
                                        const std::string& fd_text,
                                        const CallOptions& options) {
  Request req = BaseRequest("checkfd", tenant, options);
  req.doc = doc;
  req.text = fd_text;
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req)));
  const JsonValue* satisfied = response.Find("satisfied");
  if (satisfied == nullptr || !satisfied->is_bool()) {
    return InternalError("checkfd response without 'satisfied'");
  }
  CheckFdResult result;
  result.satisfied = satisfied->bool_value();
  result.mappings = response.FindInt("mappings");
  result.groups = response.FindInt("groups");
  result.violation = response.FindString("violation");
  return result;
}

StatusOr<MatrixResult> Client::Matrix(
    const std::string& tenant, const std::vector<std::string>& fd_texts,
    const std::vector<std::string>& class_texts,
    const std::string& schema_text, const CallOptions& options) {
  Request req = BaseRequest("matrix", tenant, options);
  req.fds = fd_texts;
  req.classes = class_texts;
  req.schema = schema_text;
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req)));
  const JsonValue* entries = response.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return InternalError("matrix response without 'entries' array");
  }
  MatrixResult result;
  result.num_fds = static_cast<size_t>(response.FindInt("num_fds"));
  result.num_classes = static_cast<size_t>(response.FindInt("num_classes"));
  result.independent = static_cast<size_t>(response.FindInt("independent"));
  result.cells.reserve(entries->array_items().size());
  for (const JsonValue& entry : entries->array_items()) {
    if (!entry.is_object()) return InternalError("malformed matrix entry");
    MatrixCell cell;
    cell.fd_index = static_cast<size_t>(entry.FindInt("fd"));
    cell.class_index = static_cast<size_t>(entry.FindInt("class"));
    cell.independent = entry.FindBool("independent");
    cell.product_size = entry.FindInt("product_size");
    cell.status = StatusCodeFromName(entry.FindString("status", "OK"));
    result.cells.push_back(cell);
  }
  return result;
}

StatusOr<std::vector<TenantStats>> Client::Stats() {
  Request req;
  req.op = "stats";
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req)));
  const JsonValue* tenants = response.Find("tenants");
  if (tenants == nullptr || !tenants->is_array()) {
    return InternalError("stats response without 'tenants' array");
  }
  std::vector<TenantStats> result;
  result.reserve(tenants->array_items().size());
  for (const JsonValue& t : tenants->array_items()) {
    if (!t.is_object()) return InternalError("malformed tenant stats");
    TenantStats stats;
    stats.name = t.FindString("name");
    stats.docs = t.FindInt("docs");
    stats.requests = t.FindInt("requests");
    stats.errors = t.FindInt("errors");
    stats.trips = t.FindInt("trips");
    result.push_back(std::move(stats));
  }
  return result;
}

StatusOr<bool> Client::Drop(const std::string& tenant,
                            const std::string& doc) {
  Request req;
  req.op = "drop";
  req.tenant = tenant;
  req.doc = doc;
  RTP_ASSIGN_OR_RETURN(JsonValue response, Call(std::move(req)));
  return response.FindBool("dropped");
}

Status Client::Quota(const std::string& tenant,
                     const guard::ExecutionBudget& budget) {
  Request req;
  req.op = "quota";
  req.tenant = tenant;
  req.budget = budget;
  req.has_budget = true;
  return Call(std::move(req)).status();
}

Status Client::Shutdown() {
  Request req;
  req.op = "shutdown";
  return Call(std::move(req)).status();
}

}  // namespace rtp::serve
