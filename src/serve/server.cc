#include "serve/server.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <optional>

#include "exec/automaton_cache.h"
#include "fd/fd_checker.h"
#include "independence/matrix.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "schema/schema.h"
#include "serve/framing.h"
#include "serve/json.h"
#include "update/update_class.h"
#include "xml/xml_io.h"

// POLLRDHUP (peer closed its write side) is the reliable mid-request
// disconnect signal on Linux; glibc exposes it under _GNU_SOURCE, which
// g++ defines for C++, but guard the definition for other libcs.
#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace rtp::serve {
namespace {

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool PeerDisconnected(int fd) {
  struct pollfd p;
  p.fd = fd;
  p.events = POLLRDHUP;
  p.revents = 0;
  if (::poll(&p, 1, 0) <= 0) return false;
  return (p.revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) != 0;
}

// Per-op request counters; one macro call site per op so each caches its
// own counter pointer.
void CountOp(const std::string& op) {
  if (op == "load") RTP_OBS_COUNT("serve.requests.load");
  else if (op == "eval") RTP_OBS_COUNT("serve.requests.eval");
  else if (op == "checkfd") RTP_OBS_COUNT("serve.requests.checkfd");
  else if (op == "matrix") RTP_OBS_COUNT("serve.requests.matrix");
  else if (op == "stats") RTP_OBS_COUNT("serve.requests.stats");
  else if (op == "drop") RTP_OBS_COUNT("serve.requests.drop");
  else if (op == "quota") RTP_OBS_COUNT("serve.requests.quota");
  else if (op == "shutdown") RTP_OBS_COUNT("serve.requests.shutdown");
}

// Embeds a QueryProfile into a response as structured JSON (the profile's
// own serializer emits one JSON object).
void AttachProfile(JsonValue* response, const obs::QueryProfile& profile) {
  auto parsed = JsonValue::Parse(profile.ToJson());
  response->Add("profile", parsed.ok() ? std::move(parsed).value()
                                       : JsonValue::Null());
}

}  // namespace

// One accepted client. The connection thread owns the socket for reads
// and writes; pool tasks only touch the CancelToken (via pointer) and
// never the fd.
struct Server::Connection {
  int fd = -1;
  std::thread thread;
  guard::CancelToken cancel;
  std::atomic<bool> done{false};
};

Server::Server(ServerOptions options) : options_(std::move(options)) {}

StatusOr<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server(options));
  RTP_RETURN_IF_ERROR(server->Listen());
  server->pool_ = std::make_unique<exec::ThreadPool>(
      std::max(1, options.jobs), options.queue_capacity);
  server->accept_thread_ = std::thread(&Server::AcceptLoop, server.get());
  RTP_LOG(INFO) << "rtpd listening on " << options.socket_path << " ("
                << std::max(1, options.jobs) << " workers)";
  return server;
}

Server::~Server() { Stop(); }

Status Server::Listen() {
  if (options_.socket_path.empty()) {
    return InvalidArgumentError("socket_path must not be empty");
  }
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path '" + options_.socket_path +
                                "' exceeds the AF_UNIX path limit");
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("socket(): ") + strerror(errno));
  }
  // A stale socket file from a crashed predecessor would make bind fail
  // with EADDRINUSE; the path is ours by contract, so replace it.
  ::unlink(options_.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, options_.socket_path.c_str(),
         options_.socket_path.size());
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return InternalError("bind('" + options_.socket_path +
                         "'): " + strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return InternalError(std::string("listen(): ") + strerror(errno));
  }
  if (::pipe(wake_pipe_) != 0) {
    return InternalError(std::string("pipe(): ") + strerror(errno));
  }
  return Status::OK();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

bool Server::WaitFor(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return stop_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [this] { return stop_requested_; });
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
    stop_cv_.notify_all();
    if (stopped_) return;  // another caller already tore down
    stopped_ = true;
  }
  if (wake_pipe_[1] >= 0) {
    char byte = 0;
    ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    (void)ignored;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(connections_);
  }
  // Unblock every connection thread's recv; their in-flight pool tasks see
  // the cancel token fire when the thread notices the closed socket.
  for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  pool_.reset();  // drains any still-queued tasks
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  RTP_LOG(INFO) << "rtpd stopped (" << options_.socket_path << ")";
}

void Server::Drain(int grace_ms) {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    Stop();
    return;
  }
  RTP_OBS_COUNT("serve.drain.started");
  RTP_LOG(INFO) << "rtpd draining (" << options_.socket_path << ", grace "
                << grace_ms << "ms)";
  // New connects must fail immediately: removing the path leaves existing
  // connections (and anything already in the listen backlog) untouched
  // while clients attempting fresh connects get a structured UNAVAILABLE.
  ::unlink(options_.socket_path.c_str());
  int64_t deadline_ns =
      guard::MonotonicNowNs() + int64_t{grace_ms} * 1'000'000;
  while (guard::MonotonicNowNs() < deadline_ns) {
    bool any_live = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& conn : connections_) {
        if (!conn->done.load(std::memory_order_acquire)) {
          any_live = true;
          break;
        }
      }
    }
    if (!any_live) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& conn : connections_) {
      if (!conn->done.load(std::memory_order_acquire)) {
        // Grace expired with work still in flight; Stop() below severs it.
        RTP_OBS_COUNT("serve.drain.forced");
        break;
      }
    }
  }
  Stop();
  RTP_OBS_COUNT("serve.drain.completed");
}

int64_t Server::RetryAfterMsHint() const {
  size_t depth = pool_ != nullptr ? pool_->queue_depth() : 0;
  return std::min<int64_t>(static_cast<int64_t>(depth) + 1,
                           options_.max_retry_after_ms);
}

void Server::AcceptLoop() {
  while (true) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) {
        ::close(fd);
        break;
      }
      // Reap connections whose threads already finished, so a long-lived
      // server does not accumulate dead fds/threads.
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          ::close((*it)->fd);
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
      connections_.push_back(std::move(conn));
      // Spawned under the lock so Stop()'s swap always observes a
      // joinable thread for every registered connection.
      raw->thread = std::thread([this, raw] { ServeConnection(raw); });
      RTP_OBS_GAUGE_SET("serve.connections.active", connections_.size());
    }
    RTP_OBS_COUNT("serve.connections.accepted");
  }
}

void Server::ServeConnection(Connection* conn) {
  // Framing is tolerant of arbitrarily torn input: bytes arrive in any
  // chunking (tests split one request across many delayed writes) and the
  // framer reassembles complete lines, bounding memory for oversized ones.
  LineFramer framer(options_.max_line_bytes);
  bool alive = true;
  char chunk[4096];
  int64_t last_activity_ns = guard::MonotonicNowNs();
  while (alive) {
    while (alive) {
      std::optional<LineFramer::Line> line = framer.Next();
      if (!line.has_value()) break;
      if (line->oversized) {
        RTP_OBS_COUNT("serve.errors.oversized");
        std::string response =
            MakeErrorResponse(
                0, ResourceExhaustedError(
                       "request line exceeds " +
                       std::to_string(options_.max_line_bytes) + " bytes"))
                .Serialize();
        response.push_back('\n');
        alive = SendAll(conn->fd, response);
        continue;
      }
      std::string response = HandleLine(conn, line->text);
      if (response.empty()) continue;  // reply already sent (shutdown)
      response.push_back('\n');
      alive = SendAll(conn->fd, response);
      last_activity_ns = guard::MonotonicNowNs();
    }
    if (!alive) break;
    // Block with a tick so the thread notices drain and idle timeouts
    // even when the peer sends nothing.
    struct pollfd p;
    p.fd = conn->fd;
    p.events = POLLIN | POLLRDHUP;
    p.revents = 0;
    int ready = ::poll(&p, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      // Idle tick. A draining server closes connections with nothing
      // buffered (in-flight requests already finished above).
      if (draining_.load(std::memory_order_acquire) &&
          !framer.HasBufferedData()) {
        break;
      }
      if (options_.idle_timeout_ms > 0 &&
          guard::MonotonicNowNs() - last_activity_ns >
              int64_t{options_.idle_timeout_ms} * 1'000'000) {
        RTP_OBS_COUNT("serve.connections.idle_reaped");
        break;
      }
      continue;
    }
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // disconnect, error, or Stop()'s shutdown()
    framer.Feed(std::string_view(chunk, static_cast<size_t>(n)));
    last_activity_ns = guard::MonotonicNowNs();
  }
  // The fd itself is closed by the acceptor's reap (or Stop), but the
  // peer must see EOF now — an idle-reaped or drained connection would
  // otherwise look alive until the next accept.
  ::shutdown(conn->fd, SHUT_RDWR);
  RTP_OBS_COUNT("serve.connections.closed");
  conn->done.store(true, std::memory_order_release);
}

std::string Server::HandleLine(Connection* conn, const std::string& line) {
  int64_t arrival_ns = guard::MonotonicNowNs();
  auto parsed_or = JsonValue::Parse(line);
  if (!parsed_or.ok()) {
    RTP_OBS_COUNT("serve.errors.protocol");
    return MakeErrorResponse(0, parsed_or.status()).Serialize();
  }
  // Echo the id even for requests that fail validation, as long as the
  // line was at least JSON with a numeric id.
  int64_t fallback_id =
      parsed_or->is_object() ? parsed_or->FindInt("id") : 0;
  auto req_or = DecodeRequest(*parsed_or);
  if (!req_or.ok()) {
    RTP_OBS_COUNT("serve.errors.protocol");
    return MakeErrorResponse(fallback_id, req_or.status()).Serialize();
  }
  Request req = std::move(req_or).value();
  CountOp(req.op);

  JsonValue response;
  if (req.op == "stats") {
    response = HandleStats(req);
  } else if (req.op == "shutdown") {
    // Reply before raising the stop flag: once Stop() runs it shuts this
    // socket down, so the acknowledgement must already be in flight.
    response = MakeOkResponse(req.id);
    response.Add("stopping", JsonValue::Bool(true));
    std::string framed = response.Serialize();
    framed.push_back('\n');
    SendAll(conn->fd, framed);
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
    stop_cv_.notify_all();
    return std::string();
  } else if (req.op == "drop" || req.op == "quota") {
    // Registry-only ops: cheap enough to run on the connection thread.
    response = HandleRequest(conn, req, arrival_ns);
  } else {
    // Heavy ops run on the shared pool; a full queue sheds the request
    // instead of queueing the connection thread behind it.
    struct Pending {
      std::mutex m;
      std::condition_variable cv;
      bool done = false;
      JsonValue response;
    };
    auto pending = std::make_shared<Pending>();
    auto shared_req = std::make_shared<Request>(std::move(req));
    // queue_capacity == 0 is "always shed" (the pool itself clamps its
    // queue to >= 1, so the degenerate config is enforced here).
    bool admitted =
        options_.queue_capacity > 0 &&
        pool_->TrySubmit([this, conn, shared_req, arrival_ns, pending] {
          JsonValue result = HandleRequest(conn, *shared_req, arrival_ns);
          std::lock_guard<std::mutex> lock(pending->m);
          pending->response = std::move(result);
          pending->done = true;
          pending->cv.notify_all();
        });
    if (!admitted) {
      RTP_OBS_COUNT("serve.requests.shed");
      response = MakeShedResponse(shared_req->id, RetryAfterMsHint());
    } else {
      // Await completion while watching the socket: a peer that hangs up
      // mid-request cancels the connection token, and every guard wired
      // to it trips, so abandoned work drains instead of running to the
      // bitter end.
      std::unique_lock<std::mutex> lock(pending->m);
      while (!pending->done) {
        pending->cv.wait_for(lock, std::chrono::milliseconds(50));
        if (pending->done) break;
        lock.unlock();
        if (PeerDisconnected(conn->fd)) conn->cancel.Cancel();
        lock.lock();
      }
      response = std::move(pending->response);
    }
  }
  RTP_OBS_HISTOGRAM_RECORD("serve.request_ns",
                           guard::MonotonicNowNs() - arrival_ns);
  return response.Serialize();
}

JsonValue Server::HandleRequest(Connection* conn, const Request& req,
                                int64_t arrival_ns) {
  std::shared_ptr<Tenant> tenant;
  if (req.op == "load" || req.op == "quota") {
    tenant = tenants_.GetOrCreate(req.tenant);
  } else {
    tenant = tenants_.Find(req.tenant);
    if (tenant == nullptr) {
      RTP_OBS_COUNT("serve.errors.request");
      return MakeErrorResponse(
          req.id, NotFoundError("unknown tenant '" + req.tenant + "'"));
    }
  }
  tenant->requests.fetch_add(1, std::memory_order_relaxed);
  if (tenant->m_requests != nullptr) tenant->m_requests->Add(1);

  guard::ExecutionBudget budget = req.budget;
  if (!req.has_budget) {
    std::shared_lock<std::shared_mutex> lock(tenant->mu);
    budget = tenant->default_budget.Limited() ? tenant->default_budget
                                              : options_.default_budget;
  }

  JsonValue response;
  if (req.op == "load") {
    response = HandleLoad(*tenant, req, budget, &conn->cancel, arrival_ns);
  } else if (req.op == "eval") {
    response = HandleEval(*tenant, req, budget, &conn->cancel, arrival_ns);
  } else if (req.op == "checkfd") {
    response = HandleCheckFd(*tenant, req, budget, &conn->cancel, arrival_ns);
  } else if (req.op == "matrix") {
    response = HandleMatrix(*tenant, req, budget, &conn->cancel);
  } else if (req.op == "drop") {
    response = HandleDrop(*tenant, req);
  } else if (req.op == "quota") {
    response = HandleQuota(*tenant, req);
  } else {
    response = MakeErrorResponse(req.id, InternalError("unroutable op"));
  }

  const JsonValue* ok = response.Find("ok");
  if (ok != nullptr && ok->is_bool() && !ok->bool_value()) {
    tenant->errors.fetch_add(1, std::memory_order_relaxed);
    if (tenant->m_errors != nullptr) tenant->m_errors->Add(1);
    const JsonValue* error = response.Find("error");
    StatusCode code = error != nullptr
                          ? StatusCodeFromName(error->FindString("code"))
                          : StatusCode::kInternal;
    if (guard::IsResourceCode(code)) {
      tenant->trips.fetch_add(1, std::memory_order_relaxed);
      if (tenant->m_trips != nullptr) tenant->m_trips->Add(1);
      RTP_OBS_COUNT("serve.trips");
    } else {
      RTP_OBS_COUNT("serve.errors.request");
    }
  }
  return response;
}

JsonValue Server::HandleLoad(Tenant& tenant, const Request& req,
                             const guard::ExecutionBudget& budget,
                             guard::CancelToken* cancel, int64_t arrival_ns) {
  if (req.doc.empty() || req.text.empty()) {
    return MakeErrorResponse(
        req.id, InvalidArgumentError("load requires 'doc' and 'text'"));
  }
  obs::QueryProfile profile;
  Status status;
  size_t live_nodes = 0;
  {
    // Exclusive: parsing interns labels into the tenant alphabet, and the
    // lazy Document caches (preorder index, Snapshot) must be warmed
    // before any concurrent reader can see the entry.
    std::unique_lock<std::shared_mutex> lock(tenant.mu);
    guard::GuardContext ctx(budget, cancel, arrival_ns);
    guard::ScopedGuard scope(&ctx);
    obs::ProfileScope prof("serve.load", req.profile ? &profile : nullptr);
    auto doc_or = xml::ParseXml(&tenant.alphabet, req.text);
    if (!doc_or.ok()) {
      status = doc_or.status();
    } else {
      auto doc = std::make_unique<xml::Document>(std::move(doc_or).value());
      doc->PreorderIndex(doc->root());
      std::shared_ptr<const xml::DocIndex> index = doc->Snapshot();
      status = guard::CurrentStatus();
      if (status.ok()) {
        auto entry = std::make_shared<CorpusEntry>();
        entry->name = req.doc;
        entry->live_nodes = doc->LiveNodeCount();
        entry->index = std::move(index);
        entry->doc = std::move(doc);
        live_nodes = entry->live_nodes;
        tenant.docs[req.doc] = std::move(entry);  // replaces any previous
      }
    }
  }
  if (!status.ok()) {
    JsonValue response = MakeErrorResponse(req.id, status);
    if (req.profile) AttachProfile(&response, profile);
    return response;
  }
  JsonValue response = MakeOkResponse(req.id);
  response.Add("doc", JsonValue::String(req.doc));
  response.Add("nodes", JsonValue::Int(static_cast<int64_t>(live_nodes)));
  if (req.profile) AttachProfile(&response, profile);
  return response;
}

JsonValue Server::HandleEval(Tenant& tenant, const Request& req,
                             const guard::ExecutionBudget& budget,
                             guard::CancelToken* cancel, int64_t arrival_ns) {
  if (req.doc.empty() || req.text.empty()) {
    return MakeErrorResponse(
        req.id, InvalidArgumentError("eval requires 'doc' and 'text'"));
  }
  std::shared_ptr<const CorpusEntry> entry;
  std::optional<StatusOr<pattern::ParsedPattern>> parsed;
  {
    std::unique_lock<std::shared_mutex> lock(tenant.mu);
    auto it = tenant.docs.find(req.doc);
    if (it == tenant.docs.end()) {
      return MakeErrorResponse(
          req.id, NotFoundError("tenant '" + tenant.name +
                                "' has no document '" + req.doc + "'"));
    }
    entry = it->second;
    parsed.emplace(pattern::ParsePattern(&tenant.alphabet, req.text));
  }
  if (!parsed->ok()) return MakeErrorResponse(req.id, parsed->status());

  obs::QueryProfile profile;
  JsonValue tuples_json = JsonValue::Array();
  size_t count = 0;
  {
    // Shared: evaluation and serialization read the alphabet and the
    // frozen index; loads of other documents can intern concurrently
    // only under the exclusive lock.
    std::shared_lock<std::shared_mutex> lock(tenant.mu);
    guard::GuardContext ctx(budget, cancel, arrival_ns);
    guard::ScopedGuard scope(&ctx);
    auto tuples = pattern::EvaluateSelected(parsed->value().pattern,
                                            *entry->index,
                                            req.profile ? &profile : nullptr);
    Status status = guard::CurrentStatus();
    if (!status.ok()) {
      JsonValue response = MakeErrorResponse(req.id, status);
      if (req.profile) AttachProfile(&response, profile);
      return response;
    }
    // Document order, then subtree serialization — the exact output
    // contract of `rtp_cli eval`, so serve results are bit-comparable to
    // serial library runs.
    const xml::Document& doc = entry->index->doc();
    std::sort(tuples.begin(), tuples.end(),
              [&doc](const std::vector<xml::NodeId>& a,
                     const std::vector<xml::NodeId>& b) {
                for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                  uint32_t pa = doc.PreorderIndex(a[i]);
                  uint32_t pb = doc.PreorderIndex(b[i]);
                  if (pa != pb) return pa < pb;
                }
                return a.size() < b.size();
              });
    count = tuples.size();
    for (const auto& tuple : tuples) {
      JsonValue row = JsonValue::Array();
      for (xml::NodeId n : tuple) {
        row.Push(JsonValue::String(
            xml::WriteXmlSubtree(doc, n, /*indent=*/false)));
      }
      tuples_json.Push(std::move(row));
    }
  }
  JsonValue response = MakeOkResponse(req.id);
  response.Add("count", JsonValue::Int(static_cast<int64_t>(count)));
  response.Add("tuples", std::move(tuples_json));
  if (req.profile) AttachProfile(&response, profile);
  return response;
}

JsonValue Server::HandleCheckFd(Tenant& tenant, const Request& req,
                                const guard::ExecutionBudget& budget,
                                guard::CancelToken* cancel,
                                int64_t arrival_ns) {
  if (req.doc.empty() || req.text.empty()) {
    return MakeErrorResponse(
        req.id, InvalidArgumentError("checkfd requires 'doc' and 'text'"));
  }
  std::shared_ptr<const CorpusEntry> entry;
  std::optional<fd::FunctionalDependency> fd;
  {
    std::unique_lock<std::shared_mutex> lock(tenant.mu);
    auto it = tenant.docs.find(req.doc);
    if (it == tenant.docs.end()) {
      return MakeErrorResponse(
          req.id, NotFoundError("tenant '" + tenant.name +
                                "' has no document '" + req.doc + "'"));
    }
    entry = it->second;
    auto parsed = pattern::ParsePattern(&tenant.alphabet, req.text);
    if (!parsed.ok()) return MakeErrorResponse(req.id, parsed.status());
    auto fd_or =
        fd::FunctionalDependency::FromParsed(std::move(parsed).value());
    if (!fd_or.ok()) return MakeErrorResponse(req.id, fd_or.status());
    fd.emplace(std::move(fd_or).value());
  }

  obs::QueryProfile profile;
  fd::CheckResult result;
  std::string violation_text;
  {
    std::shared_lock<std::shared_mutex> lock(tenant.mu);
    // The ambient request guard (arrival-anchored deadline, shared cancel
    // token) covers the check; CheckOptions deliberately carries no
    // budget, so CheckFd's own guard scope stays disengaged and its
    // result.status surfaces this guard's trip.
    guard::GuardContext ctx(budget, cancel, arrival_ns);
    guard::ScopedGuard scope(&ctx);
    fd::CheckOptions options;
    options.profile = req.profile ? &profile : nullptr;
    result = fd::CheckFd(*fd, *entry->index, options);
    if (result.status.ok() && !result.satisfied) {
      violation_text =
          result.violation->Describe(entry->index->doc(), *fd);
    }
  }
  if (!result.status.ok()) {
    JsonValue response = MakeErrorResponse(req.id, result.status);
    if (req.profile) AttachProfile(&response, profile);
    return response;
  }
  JsonValue response = MakeOkResponse(req.id);
  response.Add("satisfied", JsonValue::Bool(result.satisfied));
  response.Add("mappings",
               JsonValue::Int(static_cast<int64_t>(result.num_mappings)));
  response.Add("groups",
               JsonValue::Int(static_cast<int64_t>(result.num_groups)));
  if (!result.satisfied) {
    response.Add("violation", JsonValue::String(violation_text));
  }
  if (req.profile) AttachProfile(&response, profile);
  return response;
}

JsonValue Server::HandleMatrix(Tenant& tenant, const Request& req,
                               const guard::ExecutionBudget& budget,
                               guard::CancelToken* cancel) {
  if (req.fds.empty() || req.classes.empty()) {
    return MakeErrorResponse(
        req.id,
        InvalidArgumentError("matrix requires 'fds' and 'classes' arrays"));
  }
  std::vector<fd::FunctionalDependency> fds;
  std::vector<update::UpdateClass> classes;
  std::optional<schema::Schema> schema;
  {
    std::unique_lock<std::shared_mutex> lock(tenant.mu);
    for (const std::string& text : req.fds) {
      auto parsed = pattern::ParsePattern(&tenant.alphabet, text);
      if (!parsed.ok()) return MakeErrorResponse(req.id, parsed.status());
      auto fd_or =
          fd::FunctionalDependency::FromParsed(std::move(parsed).value());
      if (!fd_or.ok()) return MakeErrorResponse(req.id, fd_or.status());
      fds.push_back(std::move(fd_or).value());
    }
    for (const std::string& text : req.classes) {
      auto parsed = pattern::ParsePattern(&tenant.alphabet, text);
      if (!parsed.ok()) return MakeErrorResponse(req.id, parsed.status());
      auto cls_or = update::UpdateClass::FromParsed(std::move(parsed).value());
      if (!cls_or.ok()) return MakeErrorResponse(req.id, cls_or.status());
      classes.push_back(std::move(cls_or).value());
    }
    if (!req.schema.empty()) {
      auto schema_or = schema::Schema::Parse(&tenant.alphabet, req.schema);
      if (!schema_or.ok()) return MakeErrorResponse(req.id, schema_or.status());
      schema.emplace(std::move(schema_or).value());
    }
  }

  std::vector<const fd::FunctionalDependency*> fd_ptrs;
  fd_ptrs.reserve(fds.size());
  for (const auto& fd : fds) fd_ptrs.push_back(&fd);
  std::vector<const update::UpdateClass*> class_ptrs;
  class_ptrs.reserve(classes.size());
  for (const auto& cls : classes) class_ptrs.push_back(&cls);

  std::vector<obs::QueryProfile> cell_profiles;
  std::optional<StatusOr<independence::IndependenceMatrix>> matrix_or;
  {
    std::shared_lock<std::shared_mutex> lock(tenant.mu);
    independence::MatrixOptions options;
    options.pool = pool_.get();
    if (budget.Limited()) {
      // Budgeted: per-pair guards, per-cell degradation, and the shared
      // cancel token. The criterion bypasses the shared AutomatonCache
      // under a guard (a tripped build must never be memoized), so the
      // cache stays warm and un-poisoned for unbudgeted requests.
      options.budget = budget;
      options.cancel = cancel;
    } else {
      // Unbudgeted: run against the process-wide warm cache. No cancel
      // token — wiring one would force the cache bypass and cost every
      // fast request its warm automata to support a rare disconnect.
      options.cache = &exec::AutomatonCache::Global();
    }
    if (req.profile) options.profiles = &cell_profiles;
    matrix_or.emplace(independence::ComputeIndependenceMatrix(
        fd_ptrs, class_ptrs, schema ? &*schema : nullptr, &tenant.alphabet,
        options));
  }
  if (!matrix_or->ok()) return MakeErrorResponse(req.id, matrix_or->status());
  const independence::IndependenceMatrix& matrix = matrix_or->value();

  size_t independent = 0;
  size_t tripped = 0;
  JsonValue entries = JsonValue::Array();
  for (const independence::MatrixEntry& entry : matrix.entries) {
    JsonValue cell = JsonValue::Object();
    cell.Add("fd", JsonValue::Int(static_cast<int64_t>(entry.fd_index)));
    cell.Add("class",
             JsonValue::Int(static_cast<int64_t>(entry.class_index)));
    cell.Add("independent", JsonValue::Bool(entry.independent));
    cell.Add("product_size", JsonValue::Int(entry.product_size));
    if (!entry.status.ok()) {
      cell.Add("status",
               JsonValue::String(StatusCodeName(entry.status.code())));
      ++tripped;
    }
    if (entry.independent) ++independent;
    entries.Push(std::move(cell));
  }
  if (tripped > 0) {
    // Per-cell resource degradation: the response is still ok (tripped
    // cells carry the conservative not-independent verdict), but the
    // trips are tallied like request-level ones.
    tenant.trips.fetch_add(tripped, std::memory_order_relaxed);
    if (tenant.m_trips != nullptr) tenant.m_trips->Add(tripped);
    RTP_OBS_COUNT_N("serve.trips", tripped);
  }

  JsonValue response = MakeOkResponse(req.id);
  response.Add("num_fds",
               JsonValue::Int(static_cast<int64_t>(matrix.num_fds)));
  response.Add("num_classes",
               JsonValue::Int(static_cast<int64_t>(matrix.num_classes)));
  response.Add("independent",
               JsonValue::Int(static_cast<int64_t>(independent)));
  response.Add("entries", std::move(entries));
  if (req.profile) {
    JsonValue profiles = JsonValue::Array();
    for (const obs::QueryProfile& p : cell_profiles) {
      auto parsed = JsonValue::Parse(p.ToJson());
      profiles.Push(parsed.ok() ? std::move(parsed).value()
                                : JsonValue::Null());
    }
    response.Add("profiles", std::move(profiles));
  }
  return response;
}

JsonValue Server::HandleStats(const Request& req) {
  JsonValue response = MakeOkResponse(req.id);
  JsonValue tenants = JsonValue::Array();
  for (const std::shared_ptr<Tenant>& tenant : tenants_.All()) {
    JsonValue t = JsonValue::Object();
    t.Add("name", JsonValue::String(tenant->name));
    size_t num_docs;
    {
      std::shared_lock<std::shared_mutex> lock(tenant->mu);
      num_docs = tenant->docs.size();
    }
    t.Add("docs", JsonValue::Int(static_cast<int64_t>(num_docs)));
    t.Add("requests", JsonValue::Int(static_cast<int64_t>(
                          tenant->requests.load(std::memory_order_relaxed))));
    t.Add("errors", JsonValue::Int(static_cast<int64_t>(
                        tenant->errors.load(std::memory_order_relaxed))));
    t.Add("trips", JsonValue::Int(static_cast<int64_t>(
                       tenant->trips.load(std::memory_order_relaxed))));
    tenants.Push(std::move(t));
  }
  response.Add("tenants", std::move(tenants));
  if (req.metrics) {
    auto parsed = JsonValue::Parse(obs::DumpJson());
    response.Add("metrics", parsed.ok() ? std::move(parsed).value()
                                        : JsonValue::Null());
  }
  return response;
}

JsonValue Server::HandleDrop(Tenant& tenant, const Request& req) {
  if (req.doc.empty()) {
    return MakeErrorResponse(req.id,
                             InvalidArgumentError("drop requires 'doc'"));
  }
  bool dropped;
  {
    std::unique_lock<std::shared_mutex> lock(tenant.mu);
    dropped = tenant.docs.erase(req.doc) > 0;
  }
  JsonValue response = MakeOkResponse(req.id);
  response.Add("dropped", JsonValue::Bool(dropped));
  return response;
}

JsonValue Server::HandleQuota(Tenant& tenant, const Request& req) {
  if (!req.has_budget) {
    return MakeErrorResponse(
        req.id, InvalidArgumentError("quota requires a 'budget' object"));
  }
  {
    std::unique_lock<std::shared_mutex> lock(tenant.mu);
    tenant.default_budget = req.budget;
  }
  JsonValue response = MakeOkResponse(req.id);
  JsonValue budget = JsonValue::Object();
  budget.Add("deadline_ms", JsonValue::Int(req.budget.deadline_ms));
  budget.Add("max_states", JsonValue::Int(req.budget.max_automaton_states));
  budget.Add("max_steps", JsonValue::Int(req.budget.max_steps));
  budget.Add("max_memory_mb",
             JsonValue::Int(req.budget.max_memory_bytes >> 20));
  response.Add("budget", std::move(budget));
  return response;
}

}  // namespace rtp::serve
