#ifndef RTP_SERVE_FRAMING_H_
#define RTP_SERVE_FRAMING_H_

// Line framing for the rtpd wire protocol, factored out of the server's
// connection loop so the exact same reassembly code can be driven by the
// torn-input tests and the `serve` fuzz harness. The protocol is one JSON
// object per '\n'-terminated line; bytes arrive in arbitrary chunks
// (including mid-line, one byte at a time, or several lines at once).
//
// Oversized handling matches the server contract (docs/SERVING.md): a
// partial line that grows past max_line_bytes yields exactly one
// oversized marker (the caller answers RESOURCE_EXHAUSTED), and the rest
// of that line is discarded without buffering, so a hostile peer cannot
// balloon memory with an endless unterminated line.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace rtp::serve {

class LineFramer {
 public:
  struct Line {
    std::string text;       // without the newline; trailing CR stripped
    bool oversized = false; // marker: the line exceeded max_line_bytes
  };

  explicit LineFramer(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  // Appends received bytes. While discarding an oversized line, only the
  // unterminated tail is retained (bounded memory).
  void Feed(std::string_view bytes);

  // Next complete line, an oversized marker, or nullopt when more bytes
  // are needed. Blank lines (and bare CRs) are swallowed — they are not
  // requests.
  std::optional<Line> Next();

  // True when bytes are buffered (an incomplete request is in flight —
  // relevant to drain/idle decisions in the server).
  bool HasBufferedData() const { return !buffer_.empty(); }
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  size_t max_line_bytes_;
  bool skipping_ = false;  // discarding the tail of an oversized line
};

}  // namespace rtp::serve

#endif  // RTP_SERVE_FRAMING_H_
