#ifndef RTP_SERVE_CORPUS_H_
#define RTP_SERVE_CORPUS_H_

// Multi-tenant corpus registry for rtpd.
//
// Each tenant owns a private Alphabet plus a map of named, pre-indexed
// documents. Everything a tenant touches that mutates shared state —
// interning labels while parsing XML / patterns / FDs, inserting or
// dropping a corpus entry, changing the default budget — happens under
// the tenant's shared_mutex in exclusive mode; evaluation and result
// serialization (which only *read* the alphabet and the frozen DocIndex)
// run under shared mode, so concurrent eval/checkfd/matrix requests of
// one tenant proceed in parallel and requests of different tenants never
// contend at all.
//
// A CorpusEntry heap-pins its Document: the shared DocIndex keeps a raw
// back-pointer to the Document (xml/doc_index.h), and Document's move
// constructor deliberately drops the snapshot slot, so the document must
// never relocate while the index is alive. Load warms the lazy caches
// (preorder index, Snapshot) while still exclusive; after publication the
// entry is immutable and readers share it lock-free via shared_ptr.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/alphabet.h"
#include "guard/guard.h"
#include "obs/metrics.h"
#include "xml/doc_index.h"
#include "xml/document.h"

namespace rtp::serve {

// An immutable named document: loaded once, evaluated many times.
struct CorpusEntry {
  std::string name;
  // Heap-pinned; `index` points back into it.
  std::unique_ptr<xml::Document> doc;
  std::shared_ptr<const xml::DocIndex> index;
  size_t live_nodes = 0;
};

struct Tenant {
  explicit Tenant(std::string tenant_name);

  const std::string name;
  Alphabet alphabet;

  // Exclusive: parse phases (interning mutates the alphabet) and registry
  // mutation. Shared: evaluation + serialization (alphabet reads).
  std::shared_mutex mu;
  std::map<std::string, std::shared_ptr<const CorpusEntry>> docs;

  // Default budget for requests that carry none (set by the quota op);
  // guarded by `mu` like the rest of the mutable state.
  guard::ExecutionBudget default_budget;

  // Deterministic per-tenant tallies for the stats op (the obs registry is
  // process-global and approximate under concurrency; these are exact).
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> trips{0};

  // Cached per-tenant obs counters ("serve.tenant.<name>.*"); null when
  // the build disables obs. The tenant-name charset is validated by the
  // protocol layer, so the names are injection-safe.
  obs::Counter* m_requests = nullptr;
  obs::Counter* m_errors = nullptr;
  obs::Counter* m_trips = nullptr;
};

class TenantRegistry {
 public:
  // Finds or creates; creation is cheap (no documents yet).
  std::shared_ptr<Tenant> GetOrCreate(const std::string& name);

  // Nullptr when the tenant was never seen.
  std::shared_ptr<Tenant> Find(const std::string& name) const;

  // All tenants sorted by name (the stats op's deterministic order).
  std::vector<std::shared_ptr<Tenant>> All() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace rtp::serve

#endif  // RTP_SERVE_CORPUS_H_
