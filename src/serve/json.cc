#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rtp::serve {
namespace {

class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  StatusOr<JsonValue> Run() {
    SkipWs();
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& message) const {
    return Status(StatusCode::kParseError,
                  "json: " + message + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > max_depth_) {
      return Status(StatusCode::kResourceExhausted,
                    "json: nesting depth exceeds " +
                        std::to_string(max_depth_));
    }
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        *out = JsonValue::Bool(false);
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        *out = JsonValue::Null();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      out->Add(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      Status st = ParseValue(&item, depth + 1);
      if (!st.ok()) return st;
      out->Push(std::move(item));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            Status st = ParseHex4(&code);
            if (!st.ok()) return st;
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: require the paired low surrogate.
              if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired surrogate");
              }
              pos_ += 2;
              unsigned low = 0;
              st = ParseHex4(&low);
              if (!st.ok()) return st;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              unsigned cp =
                  0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
              AppendUtf8(out, cp);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Error("unpaired surrogate");
            } else {
              AppendUtf8(out, code);
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
        continue;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return Error("invalid hex digit in \\u escape");
    }
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) { /* sign */ }
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // leading zero must stand alone
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        return Error("digit expected after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        return Error("digit expected in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    // The slice is a valid JSON number grammar-wise; strtod cannot fail on
    // it (it may round, which is fine for protocol-scale integers).
    std::string slice(text_.substr(start, pos_ - start));
    *out = JsonValue::Number(std::strtod(slice.c_str(), nullptr));
    return Status::OK();
  }

  std::string_view text_;
  size_t max_depth_;
  size_t pos_ = 0;
};

void SerializeTo(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      break;
    case JsonValue::Kind::kBool:
      out->append(v.bool_value() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber: {
      double d = v.number_value();
      if (std::isfinite(d) && d == std::floor(d) &&
          std::abs(d) < 9.007199254740992e15) {
        // Integral within the double-exact range: render without a point.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out->append(buf);
      } else if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out->append(buf);
      } else {
        out->append("null");  // JSON has no Inf/NaN; protocol never emits them
      }
      break;
    }
    case JsonValue::Kind::kString:
      JsonValue::AppendEscaped(out, v.string_value());
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.array_items()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeTo(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.object_items()) {
        if (!first) out->push_back(',');
        first = false;
        JsonValue::AppendEscaped(out, key);
        out->push_back(':');
        SerializeTo(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(std::string_view text, size_t max_depth) {
  return Parser(text, max_depth).Run();
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

void JsonValue::AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t JsonValue::FindInt(std::string_view key, int64_t def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->int_value() : def;
}

bool JsonValue::FindBool(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value() : def;
}

std::string JsonValue::FindString(std::string_view key,
                                  const std::string& def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : def;
}

bool JsonValue::MatchesWithWildcards(const JsonValue& other) const {
  if (kind_ == Kind::kString && string_ == "*") return true;
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray: {
      if (array_.size() != other.array_.size()) return false;
      for (size_t i = 0; i < array_.size(); ++i) {
        if (!array_[i].MatchesWithWildcards(other.array_[i])) return false;
      }
      return true;
    }
    case Kind::kObject: {
      if (object_.size() != other.object_.size()) return false;
      // Order-insensitive: every pattern key must appear in `other` with a
      // matching value, and the sizes agree, so the member sets coincide.
      for (const auto& [key, value] : object_) {
        const JsonValue* ov = other.Find(key);
        if (ov == nullptr || !value.MatchesWithWildcards(*ov)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace rtp::serve
