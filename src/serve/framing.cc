#include "serve/framing.h"

namespace rtp::serve {

void LineFramer::Feed(std::string_view bytes) {
  if (skipping_) {
    // Mid-discard: drop everything up to (and including) the terminating
    // newline without buffering it.
    size_t nl = bytes.find('\n');
    if (nl == std::string_view::npos) return;
    skipping_ = false;
    bytes.remove_prefix(nl + 1);
  }
  buffer_.append(bytes.data(), bytes.size());
}

std::optional<LineFramer::Line> LineFramer::Next() {
  while (true) {
    size_t nl = buffer_.find('\n');
    if (nl == std::string::npos) {
      if (!skipping_ && buffer_.size() > max_line_bytes_) {
        // The unterminated line is already too long: report it once and
        // discard everything until its newline eventually arrives.
        skipping_ = true;
        buffer_.clear();
        Line line;
        line.oversized = true;
        return line;
      }
      return std::nullopt;
    }
    std::string text = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    if (text.size() > max_line_bytes_) {
      Line line;
      line.oversized = true;
      return line;
    }
    if (!text.empty() && text.back() == '\r') text.pop_back();
    if (text.empty()) continue;
    Line line;
    line.text = std::move(text);
    return line;
  }
}

}  // namespace rtp::serve
