#ifndef RTP_SERVE_PROTOCOL_H_
#define RTP_SERVE_PROTOCOL_H_

// Wire protocol of rtpd (docs/SERVING.md): line-delimited JSON over a
// local stream socket. Each request is one JSON object on one line; each
// response is one JSON object on one line, in request order.
//
// Request envelope (fields beyond the envelope are op-specific):
//   {"id":1,"v":1,"op":"eval","tenant":"acme",...}
//     id      caller-chosen integer, echoed verbatim in the response
//     v       protocol schema version; optional, defaults to current
//     op      one of: load eval checkfd matrix stats drop quota shutdown
//     tenant  registry namespace ([A-Za-z0-9_-]{1,64}; default "default")
//
// Response envelope:
//   {"id":1,"ok":true,"v":1,...}                        success
//   {"id":1,"ok":false,"v":1,"error":{"code":"...","message":"..."}}
// Error codes are the StatusCodeName spellings ("NOT_FOUND",
// "DEADLINE_EXCEEDED", ...), so resource trips are distinguishable from
// malformed requests on the wire.
//
// The version handshake is per-request: a request carrying an unsupported
// "v" is rejected with INVALID_ARGUMENT and the connection stays usable.
// Bump kProtocolSchemaVersion whenever a field is renamed, removed, or
// changes meaning; the golden transcripts under examples/serve/ pin the
// current shape.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "guard/guard.h"
#include "serve/json.h"

namespace rtp::serve {

inline constexpr int kProtocolSchemaVersion = 1;

// A decoded request envelope. Op-specific field use:
//   load     doc, text (the XML), budget?, profile?
//   eval     doc, text (the pattern DSL), budget?, profile?
//   checkfd  doc, text (the FD DSL), budget?, profile?
//   matrix   fds, classes (DSL texts), schema?, budget?, profile?
//   stats    metrics? (include the obs registry dump)
//   drop     doc
//   quota    budget (becomes the tenant's default)
//   shutdown —
struct Request {
  int64_t id = 0;
  std::string op;
  std::string tenant = "default";
  std::string doc;
  std::string text;
  std::vector<std::string> fds;
  std::vector<std::string> classes;
  std::string schema;
  // Budget from the request's "budget" object ({"deadline_ms":N,
  // "max_states":N,"max_steps":N,"max_memory_mb":N}, each optional,
  // 0 = unlimited). has_budget distinguishes "no budget object" (use the
  // tenant default) from an explicit all-zero (unlimited) budget.
  guard::ExecutionBudget budget;
  bool has_budget = false;
  bool profile = false;
  bool metrics = false;
};

// True for tenant names safe to embed in metric names and logs:
// [A-Za-z0-9_-], 1..64 characters.
bool IsValidTenantName(std::string_view name);

bool IsKnownOp(std::string_view op);

// Validates the envelope (id, v, op, tenant) and field shapes. Op-specific
// presence requirements (e.g. eval needs doc+text) are enforced by the
// server, which can phrase better errors.
StatusOr<Request> DecodeRequest(const JsonValue& json);

// Builds the wire object for `req` (always includes id, v, op, tenant;
// op-specific fields only when set). DecodeRequest(EncodeRequest(r))
// reproduces r.
JsonValue EncodeRequest(const Request& req);

// Response envelopes. Handlers Add() their op-specific fields onto the
// success envelope.
JsonValue MakeOkResponse(int64_t id);
JsonValue MakeErrorResponse(int64_t id, const Status& status);

// Overload shed: RESOURCE_EXHAUSTED plus a "retry_after_ms" backoff hint
// inside the error object. Only queue-full sheds carry the hint — budget
// trips share the code but never the field, which is how clients tell a
// retryable overload from a request that is simply too expensive.
JsonValue MakeShedResponse(int64_t id, int64_t retry_after_ms);

// Extracts the Status from a response envelope: OK for {"ok":true},
// the decoded error for {"ok":false}, INTERNAL for malformed envelopes.
Status ResponseStatus(const JsonValue& response);

// The "retry_after_ms" hint of a shed response envelope, or 0 when the
// response carries none (success, or a non-overload error).
int64_t ResponseRetryAfterMs(const JsonValue& response);

// Inverse of StatusCodeName (kInternal for unknown spellings, so foreign
// codes degrade to a generic error instead of being dropped).
StatusCode StatusCodeFromName(std::string_view name);

}  // namespace rtp::serve

#endif  // RTP_SERVE_PROTOCOL_H_
