#ifndef RTP_SERVE_CLIENT_H_
#define RTP_SERVE_CLIENT_H_

// Client side of the rtpd wire protocol. This is the ONE client
// implementation: the rtpd_client tool, the end-to-end test battery, and
// the throughput bench all speak through it, so the protocol has exactly
// one encoder/decoder per side and the golden transcripts pin both.
//
// A Client is a single connection with strictly sequential
// request/response framing (the server responds in request order). It is
// not thread-safe; concurrent callers each open their own Client, which
// is also how the server's per-connection cancellation is scoped.
//
// Resilience (docs/ROBUSTNESS.md "Fault model"): a Client built with a
// nonzero call_timeout_ms never hangs — the per-call wall-clock deadline
// is wired to SO_RCVTIMEO/SO_SNDTIMEO on the socket, and every transport
// failure surfaces as a structured Status: UNAVAILABLE when the server
// cannot be reached or does not answer in time (connect refusal, socket
// timeout, connection closed before the response), TRANSPORT_ERROR when
// bytes arrived but were not a well-formed frame (unparseable response,
// response id mismatch). With a RetryPolicy of max_attempts > 1, failed
// attempts of *idempotent* ops (eval / checkfd / matrix / stats) are
// retried on a fresh connection with exponential backoff and
// decorrelated jitter; load / drop / quota / shutdown are never retried
// (a duplicate would repeat the side effect). Overload sheds that carry
// a retry_after_ms hint are retried the same way, honoring the hint.

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "common/status.h"
#include "fuzz/rng.h"
#include "guard/guard.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace rtp::serve {

// True for ops safe to retry after a transport failure (the request may
// or may not have executed server-side; these ops change nothing).
bool IsIdempotentOp(std::string_view op);

// Retry discipline for idempotent calls that fail with a transport status
// or a shed-with-hint. Backoff is exponential with decorrelated jitter:
// each sleep is drawn uniformly from [initial_backoff_ms, 3 * previous],
// capped at max_backoff_ms.
struct RetryPolicy {
  int max_attempts = 1;  // total attempts per call; 1 = never retry
  int initial_backoff_ms = 2;
  int max_backoff_ms = 100;
};

// Connection-scoped options (Connect-time).
struct ClientOptions {
  // Per-call wall-clock deadline in milliseconds, applied across all
  // attempts of one Call and wired to SO_RCVTIMEO/SO_SNDTIMEO so a hung
  // server surfaces as UNAVAILABLE instead of a blocked thread.
  // 0 = block indefinitely (the historical behavior).
  int call_timeout_ms = 0;
  RetryPolicy retry;
  // Seed for the jitter stream, so tests can pin backoff schedules.
  uint64_t jitter_seed = 1;
};

// Per-request options shared by the typed wrappers.
struct CallOptions {
  // When limited, sent as the request's budget object (otherwise the
  // tenant default applies server-side).
  guard::ExecutionBudget budget;
  // Ask the server for a QueryProfile ("profile" field of the response).
  bool profile = false;
  // Chaos injection: the decided fault to apply to this call's FIRST
  // attempt (retries always run clean, so injection counts stay
  // deterministic). Drawn from a chaos::FaultPlan by the workload runner.
  chaos::FaultDecision fault;
};

struct EvalResult {
  // tuples[i][j] is the XML serialization of tuple i's j-th subtree,
  // sorted by document order — identical to rtp_cli eval output lines.
  std::vector<std::vector<std::string>> tuples;
};

struct CheckFdResult {
  bool satisfied = true;
  int64_t mappings = 0;
  int64_t groups = 0;
  std::string violation;  // empty when satisfied
};

struct MatrixCell {
  size_t fd_index = 0;
  size_t class_index = 0;
  bool independent = false;
  int64_t product_size = 0;
  // OK, or the resource code of a per-cell budget trip.
  StatusCode status = StatusCode::kOk;
};

struct MatrixResult {
  size_t num_fds = 0;
  size_t num_classes = 0;
  size_t independent = 0;
  std::vector<MatrixCell> cells;
};

struct TenantStats {
  std::string name;
  int64_t docs = 0;
  int64_t requests = 0;
  int64_t errors = 0;
  int64_t trips = 0;
};

class Client {
 public:
  // Connects to a listening rtpd socket. A failed connect is UNAVAILABLE.
  static StatusOr<Client> Connect(const std::string& socket_path,
                                  const ClientOptions& options = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // Sends `req` (assigning the next sequential id when req.id == 0) and
  // returns the decoded response envelope; {"ok":false} envelopes become
  // the transported error Status. The full envelope is returned so
  // callers can read op-specific fields (and tests can pin them).
  // Transport failures close the connection; idempotent ops are then
  // retried per the RetryPolicy on a fresh connection. `fault` is the
  // chaos decision applied to the first attempt (kNone = clean).
  StatusOr<JsonValue> Call(Request req,
                           const chaos::FaultDecision& fault = {});

  // Typed wrappers (each one Call()).
  Status Load(const std::string& tenant, const std::string& doc,
              const std::string& xml_text, const CallOptions& options = {});
  StatusOr<EvalResult> Eval(const std::string& tenant, const std::string& doc,
                            const std::string& pattern_text,
                            const CallOptions& options = {});
  StatusOr<CheckFdResult> CheckFd(const std::string& tenant,
                                  const std::string& doc,
                                  const std::string& fd_text,
                                  const CallOptions& options = {});
  StatusOr<MatrixResult> Matrix(const std::string& tenant,
                                const std::vector<std::string>& fd_texts,
                                const std::vector<std::string>& class_texts,
                                const std::string& schema_text = "",
                                const CallOptions& options = {});
  StatusOr<std::vector<TenantStats>> Stats();
  StatusOr<bool> Drop(const std::string& tenant, const std::string& doc);
  Status Quota(const std::string& tenant,
               const guard::ExecutionBudget& budget);
  Status Shutdown();

  // Raw line I/O for the protocol and robustness tests (malformed bytes,
  // mid-request disconnects). SendLine appends the newline itself;
  // ReadLine strips it. ReadLine fails when the server closes first.
  Status SendLine(const std::string& line);
  StatusOr<std::string> ReadLine();

  // The underlying socket (tests close/shutdown it to simulate aborts).
  int fd() const { return fd_; }

  // Lifetime retry/reconnect counters (per client; for tests and stats).
  uint64_t retries() const { return retries_; }
  uint64_t reconnects() const { return reconnects_; }

 private:
  Client(int fd, std::string socket_path, const ClientOptions& options)
      : fd_(fd),
        socket_path_(std::move(socket_path)),
        options_(options),
        jitter_(options.jitter_seed) {}

  // One wire exchange (no retries). Applies `fault`, honors the remaining
  // deadline, and reports the shed hint (0 when none) via retry_after_ms.
  StatusOr<JsonValue> CallOnce(const Request& req,
                               const chaos::FaultDecision& fault,
                               int64_t deadline_ns, int64_t* retry_after_ms);
  // Opens a fresh connection to socket_path_ (closing any current fd) and
  // applies the socket timeouts.
  Status Reconnect(int64_t deadline_ns);
  // Marks the connection broken: close the fd, drop buffered bytes.
  void CloseBroken();
  // Applies SO_RCVTIMEO/SO_SNDTIMEO for the remaining deadline.
  void ApplySocketTimeouts(int64_t deadline_ns);

  int fd_ = -1;
  int64_t next_id_ = 1;
  std::string read_buffer_;
  std::string socket_path_;
  ClientOptions options_;
  fuzz::Rng jitter_{1};
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
};

}  // namespace rtp::serve

#endif  // RTP_SERVE_CLIENT_H_
