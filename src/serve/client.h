#ifndef RTP_SERVE_CLIENT_H_
#define RTP_SERVE_CLIENT_H_

// Client side of the rtpd wire protocol. This is the ONE client
// implementation: the rtpd_client tool, the end-to-end test battery, and
// the throughput bench all speak through it, so the protocol has exactly
// one encoder/decoder per side and the golden transcripts pin both.
//
// A Client is a single connection with strictly sequential
// request/response framing (the server responds in request order). It is
// not thread-safe; concurrent callers each open their own Client, which
// is also how the server's per-connection cancellation is scoped.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "guard/guard.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace rtp::serve {

// Per-request options shared by the typed wrappers.
struct CallOptions {
  // When limited, sent as the request's budget object (otherwise the
  // tenant default applies server-side).
  guard::ExecutionBudget budget;
  // Ask the server for a QueryProfile ("profile" field of the response).
  bool profile = false;
};

struct EvalResult {
  // tuples[i][j] is the XML serialization of tuple i's j-th subtree,
  // sorted by document order — identical to rtp_cli eval output lines.
  std::vector<std::vector<std::string>> tuples;
};

struct CheckFdResult {
  bool satisfied = true;
  int64_t mappings = 0;
  int64_t groups = 0;
  std::string violation;  // empty when satisfied
};

struct MatrixCell {
  size_t fd_index = 0;
  size_t class_index = 0;
  bool independent = false;
  int64_t product_size = 0;
  // OK, or the resource code of a per-cell budget trip.
  StatusCode status = StatusCode::kOk;
};

struct MatrixResult {
  size_t num_fds = 0;
  size_t num_classes = 0;
  size_t independent = 0;
  std::vector<MatrixCell> cells;
};

struct TenantStats {
  std::string name;
  int64_t docs = 0;
  int64_t requests = 0;
  int64_t errors = 0;
  int64_t trips = 0;
};

class Client {
 public:
  // Connects to a listening rtpd socket.
  static StatusOr<Client> Connect(const std::string& socket_path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // Sends `req` (assigning the next sequential id when req.id == 0) and
  // returns the decoded response envelope; {"ok":false} envelopes become
  // the transported error Status. The full envelope is returned so
  // callers can read op-specific fields (and tests can pin them).
  StatusOr<JsonValue> Call(Request req);

  // Typed wrappers (each one Call()).
  Status Load(const std::string& tenant, const std::string& doc,
              const std::string& xml_text, const CallOptions& options = {});
  StatusOr<EvalResult> Eval(const std::string& tenant, const std::string& doc,
                            const std::string& pattern_text,
                            const CallOptions& options = {});
  StatusOr<CheckFdResult> CheckFd(const std::string& tenant,
                                  const std::string& doc,
                                  const std::string& fd_text,
                                  const CallOptions& options = {});
  StatusOr<MatrixResult> Matrix(const std::string& tenant,
                                const std::vector<std::string>& fd_texts,
                                const std::vector<std::string>& class_texts,
                                const std::string& schema_text = "",
                                const CallOptions& options = {});
  StatusOr<std::vector<TenantStats>> Stats();
  StatusOr<bool> Drop(const std::string& tenant, const std::string& doc);
  Status Quota(const std::string& tenant,
               const guard::ExecutionBudget& budget);
  Status Shutdown();

  // Raw line I/O for the protocol and robustness tests (malformed bytes,
  // mid-request disconnects). SendLine appends the newline itself;
  // ReadLine strips it. ReadLine fails when the server closes first.
  Status SendLine(const std::string& line);
  StatusOr<std::string> ReadLine();

  // The underlying socket (tests close/shutdown it to simulate aborts).
  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  int64_t next_id_ = 1;
  std::string read_buffer_;
};

}  // namespace rtp::serve

#endif  // RTP_SERVE_CLIENT_H_
