#include "serve/protocol.h"

namespace rtp::serve {
namespace {

StatusOr<std::vector<std::string>> DecodeStringArray(const JsonValue& parent,
                                                     std::string_view key) {
  std::vector<std::string> out;
  const JsonValue* v = parent.Find(key);
  if (v == nullptr) return out;
  if (!v->is_array()) {
    return InvalidArgumentError("'" + std::string(key) +
                                "' must be an array of strings");
  }
  out.reserve(v->array_items().size());
  for (const JsonValue& item : v->array_items()) {
    if (!item.is_string()) {
      return InvalidArgumentError("'" + std::string(key) +
                                  "' must be an array of strings");
    }
    out.push_back(item.string_value());
  }
  return out;
}

Status DecodeBudgetField(const JsonValue& budget, std::string_view key,
                         int64_t* out) {
  const JsonValue* v = budget.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number() || v->int_value() < 0) {
    return InvalidArgumentError("budget field '" + std::string(key) +
                                "' must be a nonnegative integer");
  }
  *out = v->int_value();
  return Status::OK();
}

JsonValue EncodeBudget(const guard::ExecutionBudget& budget) {
  JsonValue b = JsonValue::Object();
  if (budget.deadline_ms > 0) b.Add("deadline_ms", JsonValue::Int(budget.deadline_ms));
  if (budget.max_automaton_states > 0) {
    b.Add("max_states", JsonValue::Int(budget.max_automaton_states));
  }
  if (budget.max_steps > 0) b.Add("max_steps", JsonValue::Int(budget.max_steps));
  if (budget.max_memory_bytes > 0) {
    b.Add("max_memory_mb", JsonValue::Int(budget.max_memory_bytes >> 20));
  }
  return b;
}

}  // namespace

bool IsValidTenantName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool IsKnownOp(std::string_view op) {
  return op == "load" || op == "eval" || op == "checkfd" || op == "matrix" ||
         op == "stats" || op == "drop" || op == "quota" || op == "shutdown";
}

StatusOr<Request> DecodeRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return InvalidArgumentError("request must be a JSON object");
  }
  Request req;
  const JsonValue* id = json.Find("id");
  if (id == nullptr || !id->is_number()) {
    return InvalidArgumentError("request requires an integer 'id'");
  }
  req.id = id->int_value();
  if (const JsonValue* v = json.Find("v")) {
    if (!v->is_number() ||
        v->int_value() != kProtocolSchemaVersion) {
      return InvalidArgumentError(
          "unsupported protocol version (server speaks v" +
          std::to_string(kProtocolSchemaVersion) + ")");
    }
  }
  req.op = json.FindString("op");
  if (!IsKnownOp(req.op)) {
    return InvalidArgumentError("unknown op '" + req.op + "'");
  }
  req.tenant = json.FindString("tenant", "default");
  if (!IsValidTenantName(req.tenant)) {
    return InvalidArgumentError(
        "tenant must match [A-Za-z0-9_-]{1,64}");
  }
  if (const JsonValue* doc = json.Find("doc")) {
    if (!doc->is_string()) return InvalidArgumentError("'doc' must be a string");
    req.doc = doc->string_value();
  }
  if (const JsonValue* text = json.Find("text")) {
    if (!text->is_string()) {
      return InvalidArgumentError("'text' must be a string");
    }
    req.text = text->string_value();
  }
  RTP_ASSIGN_OR_RETURN(req.fds, DecodeStringArray(json, "fds"));
  RTP_ASSIGN_OR_RETURN(req.classes, DecodeStringArray(json, "classes"));
  if (const JsonValue* schema = json.Find("schema")) {
    if (!schema->is_string()) {
      return InvalidArgumentError("'schema' must be a string");
    }
    req.schema = schema->string_value();
  }
  if (const JsonValue* budget = json.Find("budget")) {
    if (!budget->is_object()) {
      return InvalidArgumentError("'budget' must be an object");
    }
    req.has_budget = true;
    RTP_RETURN_IF_ERROR(
        DecodeBudgetField(*budget, "deadline_ms", &req.budget.deadline_ms));
    RTP_RETURN_IF_ERROR(DecodeBudgetField(*budget, "max_states",
                                          &req.budget.max_automaton_states));
    RTP_RETURN_IF_ERROR(
        DecodeBudgetField(*budget, "max_steps", &req.budget.max_steps));
    int64_t mb = 0;
    RTP_RETURN_IF_ERROR(DecodeBudgetField(*budget, "max_memory_mb", &mb));
    if (mb > (int64_t{1} << 40)) {
      return InvalidArgumentError("budget field 'max_memory_mb' is too large");
    }
    if (mb > 0) req.budget.max_memory_bytes = mb << 20;
  }
  if (const JsonValue* profile = json.Find("profile")) {
    if (!profile->is_bool()) {
      return InvalidArgumentError("'profile' must be a boolean");
    }
    req.profile = profile->bool_value();
  }
  if (const JsonValue* metrics = json.Find("metrics")) {
    if (!metrics->is_bool()) {
      return InvalidArgumentError("'metrics' must be a boolean");
    }
    req.metrics = metrics->bool_value();
  }
  return req;
}

JsonValue EncodeRequest(const Request& req) {
  JsonValue v = JsonValue::Object();
  v.Add("id", JsonValue::Int(req.id));
  v.Add("v", JsonValue::Int(kProtocolSchemaVersion));
  v.Add("op", JsonValue::String(req.op));
  v.Add("tenant", JsonValue::String(req.tenant));
  if (!req.doc.empty()) v.Add("doc", JsonValue::String(req.doc));
  if (!req.text.empty()) v.Add("text", JsonValue::String(req.text));
  if (!req.fds.empty()) {
    JsonValue fds = JsonValue::Array();
    for (const std::string& fd : req.fds) fds.Push(JsonValue::String(fd));
    v.Add("fds", std::move(fds));
  }
  if (!req.classes.empty()) {
    JsonValue classes = JsonValue::Array();
    for (const std::string& c : req.classes) {
      classes.Push(JsonValue::String(c));
    }
    v.Add("classes", std::move(classes));
  }
  if (!req.schema.empty()) v.Add("schema", JsonValue::String(req.schema));
  if (req.has_budget) v.Add("budget", EncodeBudget(req.budget));
  if (req.profile) v.Add("profile", JsonValue::Bool(true));
  if (req.metrics) v.Add("metrics", JsonValue::Bool(true));
  return v;
}

JsonValue MakeOkResponse(int64_t id) {
  JsonValue v = JsonValue::Object();
  v.Add("id", JsonValue::Int(id));
  v.Add("ok", JsonValue::Bool(true));
  v.Add("v", JsonValue::Int(kProtocolSchemaVersion));
  return v;
}

JsonValue MakeErrorResponse(int64_t id, const Status& status) {
  JsonValue v = JsonValue::Object();
  v.Add("id", JsonValue::Int(id));
  v.Add("ok", JsonValue::Bool(false));
  v.Add("v", JsonValue::Int(kProtocolSchemaVersion));
  JsonValue error = JsonValue::Object();
  error.Add("code", JsonValue::String(StatusCodeName(status.code())));
  error.Add("message", JsonValue::String(status.message()));
  v.Add("error", std::move(error));
  return v;
}

JsonValue MakeShedResponse(int64_t id, int64_t retry_after_ms) {
  JsonValue v = JsonValue::Object();
  v.Add("id", JsonValue::Int(id));
  v.Add("ok", JsonValue::Bool(false));
  v.Add("v", JsonValue::Int(kProtocolSchemaVersion));
  JsonValue error = JsonValue::Object();
  error.Add("code",
            JsonValue::String(StatusCodeName(StatusCode::kResourceExhausted)));
  error.Add("message",
            JsonValue::String("server overloaded: request queue is full"));
  error.Add("retry_after_ms", JsonValue::Int(retry_after_ms));
  v.Add("error", std::move(error));
  return v;
}

Status ResponseStatus(const JsonValue& response) {
  const JsonValue* ok = response.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return InternalError("malformed response envelope: " +
                         response.Serialize());
  }
  if (ok->bool_value()) return Status::OK();
  const JsonValue* error = response.Find("error");
  if (error == nullptr || !error->is_object()) {
    return InternalError("error response without error object");
  }
  return Status(StatusCodeFromName(error->FindString("code")),
                error->FindString("message"));
}

int64_t ResponseRetryAfterMs(const JsonValue& response) {
  const JsonValue* error = response.Find("error");
  if (error == nullptr || !error->is_object()) return 0;
  return error->FindInt("retry_after_ms");
}

StatusCode StatusCodeFromName(std::string_view name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kParseError,
      StatusCode::kUnimplemented, StatusCode::kInternal,
      StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
      StatusCode::kCancelled,        StatusCode::kUnavailable,
      StatusCode::kTransportError,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace rtp::serve
