#include "chaos/chaos.h"

#include <errno.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>

namespace rtp::chaos {
namespace {

struct KindRate {
  FaultKind kind;
  uint32_t rate;
};

// The draw order is part of the determinism contract: reordering this
// table reshuffles which operations get which fault for a fixed seed.
std::array<KindRate, 7> RateTable(const ChaosConfig& config) {
  return {{{FaultKind::kConnectRefused, config.connect_refused},
           {FaultKind::kReadStall, config.read_stall},
           {FaultKind::kWriteStall, config.write_stall},
           {FaultKind::kTornWrite, config.torn_write},
           {FaultKind::kCorruptByte, config.corrupt_byte},
           {FaultKind::kPrematureClose, config.premature_close},
           {FaultKind::kResponseDelay, config.response_delay}}};
}

bool PlainSend(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kConnectRefused:
      return "connect_refused";
    case FaultKind::kReadStall:
      return "read_stall";
    case FaultKind::kWriteStall:
      return "write_stall";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kCorruptByte:
      return "corrupt_byte";
    case FaultKind::kPrematureClose:
      return "premature_close";
    case FaultKind::kResponseDelay:
      return "response_delay";
  }
  return "unknown";
}

uint32_t ChaosConfig::TotalRate() const {
  return connect_refused + read_stall + write_stall + torn_write +
         corrupt_byte + premature_close + response_delay;
}

Status ChaosConfig::Validate() const {
  if (TotalRate() > 10000) {
    return InvalidArgumentError(
        "chaos fault rates sum to " + std::to_string(TotalRate()) +
        " basis points (must be <= 10000)");
  }
  return Status::OK();
}

FaultPlan::FaultPlan(const ChaosConfig& config, uint64_t stream)
    : config_(config),
      // splitmix64 seeding discipline: the stream index perturbs the seed
      // through the same golden-ratio increment the generator itself uses,
      // so distinct streams decorrelate even for small seeds.
      rng_(config.seed + (stream + 1) * 0x9e3779b97f4a7c15ULL) {}

FaultDecision FaultPlan::Draw() {
  FaultDecision decision;
  if (!config_.enabled()) return decision;
  // Fixed draw shape: one word for the kind, one for the detail — taken
  // unconditionally so the stream position never depends on the outcome.
  uint64_t roll = rng_.Below(10000);
  decision.detail = rng_.Next();
  uint64_t acc = 0;
  for (const KindRate& entry : RateTable(config_)) {
    acc += entry.rate;
    if (roll < acc) {
      decision.kind = entry.kind;
      break;
    }
  }
  decision.stall_ms = config_.stall_ms;
  decision.delay_ms = config_.delay_ms;
  ++counts_[static_cast<size_t>(decision.kind)];
  return decision;
}

uint64_t FaultPlan::injected() const {
  uint64_t total = 0;
  for (size_t i = 1; i < counts_.size(); ++i) total += counts_[i];
  return total;
}

void SleepMs(uint32_t ms) {
  if (ms == 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Status ShimSendLine(int fd, const std::string& line,
                    const FaultDecision& fault) {
  std::string framed = line;
  framed.push_back('\n');
  switch (fault.kind) {
    case FaultKind::kCorruptByte:
      // Overwrite one byte of the payload (never the framing newline)
      // with a character that cannot re-frame the line.
      if (framed.size() > 1) {
        framed[fault.detail % (framed.size() - 1)] = '#';
      }
      break;
    case FaultKind::kTornWrite: {
      // 2–4 pieces with a short pause between them: the server must
      // reassemble the line across several recv() returns.
      size_t pieces = 2 + fault.detail % 3;
      pieces = std::min(pieces, framed.size());
      uint32_t pause_ms =
          std::min<uint32_t>(fault.stall_ms, 20) / static_cast<uint32_t>(pieces);
      size_t off = 0;
      for (size_t i = 0; i < pieces; ++i) {
        size_t len = (i + 1 == pieces) ? framed.size() - off
                                       : framed.size() / pieces;
        if (!PlainSend(fd, framed.data() + off, len)) {
          return UnavailableError("send failed mid torn write");
        }
        off += len;
        if (i + 1 < pieces) SleepMs(std::max<uint32_t>(pause_ms, 1));
      }
      return Status::OK();
    }
    case FaultKind::kWriteStall: {
      // First half, a stall, then the rest — the peer sees a mid-line gap.
      size_t half = framed.size() / 2;
      if (!PlainSend(fd, framed.data(), half)) {
        return UnavailableError("send failed before write stall");
      }
      SleepMs(fault.stall_ms);
      if (!PlainSend(fd, framed.data() + half, framed.size() - half)) {
        return UnavailableError("send failed after write stall");
      }
      return Status::OK();
    }
    default:
      break;
  }
  if (!PlainSend(fd, framed.data(), framed.size())) {
    return UnavailableError("send failed: connection lost");
  }
  return Status::OK();
}

}  // namespace rtp::chaos
