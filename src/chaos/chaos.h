#ifndef RTP_CHAOS_CHAOS_H_
#define RTP_CHAOS_CHAOS_H_

// rtp::chaos — seeded, deterministic fault injection for the serving
// stack (docs/ROBUSTNESS.md "Fault model").
//
// A ChaosConfig names per-10000 injection rates for each fault kind plus
// the fault shape parameters (stall/delay durations). A FaultPlan turns a
// (config, stream) pair into a deterministic sequence of FaultDecisions:
// exactly one Draw() per operation, regardless of how many retry attempts
// the operation ends up needing, so the injection sequence — and hence
// the per-node injection counts the chaos CI leg diffs — depends only on
// (config.seed, stream, op sequence). The RNG is the same splitmix64
// discipline as rtp::workload thread seeding (fuzz/rng.h).
//
// The decided faults are applied by a socket shim (ShimSendLine below)
// shared by the resilient serve::Client (in-process injection with exact
// counts) and the standalone rtp_chaos_proxy tool (wire-level injection
// against a real daemon for CI runs).

#include <array>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "fuzz/rng.h"

namespace rtp::chaos {

// Injectable fault kinds. Benign kinds (torn write, write stall, response
// delay) perturb timing/framing but let the operation succeed; failing
// kinds (connect refusal, read stall, corruption, premature close) force
// the client through its retry/reconnect machinery.
enum class FaultKind : uint8_t {
  kNone = 0,
  kConnectRefused,   // the attempt fails as if connect() was refused
  kReadStall,        // the response never arrives within the deadline
  kWriteStall,       // the request bytes pause mid-line
  kTornWrite,        // the request line is split across several writes
  kCorruptByte,      // one request byte is overwritten on the wire
  kPrematureClose,   // the connection closes right after the request
  kResponseDelay,    // the response is delivered late
};

inline constexpr int kNumFaultKinds = 8;  // including kNone

// Stable name for metrics / stats keys ("none", "connect_refused", ...).
const char* FaultKindName(FaultKind kind);

// Injection rates in basis points (per 10000 operations) plus fault shape
// parameters. Basis points rather than percent so a plan can express
// sub-percent fault densities; the rates must sum to <= 10000.
struct ChaosConfig {
  uint64_t seed = 0;
  uint32_t connect_refused = 0;
  uint32_t read_stall = 0;
  uint32_t write_stall = 0;
  uint32_t torn_write = 0;
  uint32_t corrupt_byte = 0;
  uint32_t premature_close = 0;
  uint32_t response_delay = 0;
  // Pause length for read/write stalls, extra latency for delays.
  uint32_t stall_ms = 20;
  uint32_t delay_ms = 5;

  uint32_t TotalRate() const;
  bool enabled() const { return TotalRate() > 0; }
  // INVALID_ARGUMENT when the rates sum past 10000.
  Status Validate() const;
};

// One decided fault, ready for the transport that applies it.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  uint32_t stall_ms = 0;
  uint32_t delay_ms = 0;
  // Kind-specific shape: piece count basis for torn writes, byte offset
  // basis for corruption. Drawn alongside the kind so decisions stay
  // reproducible.
  uint64_t detail = 0;

  bool none() const { return kind == FaultKind::kNone; }
};

// A deterministic stream of fault decisions. Draw() consumes a fixed
// number of RNG words per call whether or not a fault fires, so two plans
// built from the same (config, stream) always agree draw-for-draw.
class FaultPlan {
 public:
  // Empty plan: Draw() always returns kNone (and consumes nothing).
  FaultPlan() : rng_(0) {}
  FaultPlan(const ChaosConfig& config, uint64_t stream);

  FaultDecision Draw();

  const ChaosConfig& config() const { return config_; }
  // Lifetime injection counts, indexed by FaultKind.
  const std::array<uint64_t, kNumFaultKinds>& counts() const {
    return counts_;
  }
  // Total non-kNone decisions drawn so far.
  uint64_t injected() const;

 private:
  ChaosConfig config_;
  fuzz::Rng rng_;
  std::array<uint64_t, kNumFaultKinds> counts_{};
};

// Socket shim: sends `line` plus a trailing newline on `fd`, applying the
// send-side faults (kTornWrite / kWriteStall / kCorruptByte; every other
// kind sends cleanly). Loops on EINTR, uses MSG_NOSIGNAL. Returns
// UNAVAILABLE when the socket fails mid-send. This is the ONE place the
// send-side fault semantics live; serve::Client and rtp_chaos_proxy both
// go through it.
Status ShimSendLine(int fd, const std::string& line,
                    const FaultDecision& fault);

// Sleeps for `ms` milliseconds (shared by the shim and the proxy).
void SleepMs(uint32_t ms);

}  // namespace rtp::chaos

#endif  // RTP_CHAOS_CHAOS_H_
