#ifndef RTP_GUARD_FAILPOINTS_H_
#define RTP_GUARD_FAILPOINTS_H_

#include <cstdint>
#include <string_view>

// Compile-time fault injection for robustness tests.
//
// Pipeline code marks named sites with RTP_FAILPOINT("site.name"). In a
// normal build the macro compiles to nothing. When the tree is configured
// with -DRTP_FAILPOINTS=ON, a test can arm a site with an action; the next
// time execution reaches the site (optionally after a number of free hits)
// the action fires against the guard installed on the current thread —
// tripping its deadline, state quota, memory budget, or cancellation, or
// simulating an allocation failure. Sites with no armed action only bump a
// hit counter.
//
// The site catalogue lives in docs/ROBUSTNESS.md. Arming is process-global
// and mutex-protected; tests disarm everything in their teardown.
namespace rtp::guard {

enum class FailAction {
  kNone = 0,
  kDeadline,   // trip the current guard as DEADLINE_EXCEEDED
  kStates,     // trip the current guard as RESOURCE_EXHAUSTED (state quota)
  kMemory,     // trip the current guard as RESOURCE_EXHAUSTED (memory)
  kCancel,     // trip the current guard as CANCELLED
  kAllocFail,  // trip the current guard as RESOURCE_EXHAUSTED (allocation)
};

// True when the failpoint machinery was compiled in (-DRTP_FAILPOINTS=ON).
// The functions below are callable either way; without the machinery they
// are inert stubs so tests can compile once and GTEST_SKIP at runtime.
bool FailpointsCompiledIn();

// Arms `site` to fire `action` after `after_hits` further passes through
// it (0 = fire on the very next hit). Re-arming replaces the previous
// action. Firing disarms the site.
void ArmFailpoint(std::string_view site, FailAction action,
                  int64_t after_hits = 0);

// Disarms every site and resets all hit counters.
void DisarmAllFailpoints();

// Total number of times execution passed `site` since the last
// DisarmAllFailpoints() (counted only in RTP_FAILPOINTS builds).
int64_t FailpointHits(std::string_view site);

namespace internal {
// Out-of-line slow path behind RTP_FAILPOINT.
void FailpointHit(std::string_view site);
}  // namespace internal

}  // namespace rtp::guard

#ifdef RTP_FAILPOINTS
#define RTP_FAILPOINT(site) ::rtp::guard::internal::FailpointHit(site)
#else
#define RTP_FAILPOINT(site) \
  do {                      \
  } while (false)
#endif

#endif  // RTP_GUARD_FAILPOINTS_H_
