#include "guard/failpoints.h"

#include <map>
#include <mutex>
#include <string>

#include "guard/guard.h"
#include "obs/metrics.h"

namespace rtp::guard {

#ifdef RTP_FAILPOINTS

namespace {

struct SiteState {
  FailAction action = FailAction::kNone;
  int64_t remaining = 0;  // free hits before the armed action fires
  int64_t hits = 0;
};

std::mutex& SitesMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::map<std::string, SiteState, std::less<>>& Sites() {
  static auto* sites = new std::map<std::string, SiteState, std::less<>>;
  return *sites;
}

void Fire(FailAction action, std::string_view site) {
  GuardContext* g = Current();
  if (g == nullptr) return;  // Failpoints act on the installed guard only.
  std::string where = "failpoint " + std::string(site);
  switch (action) {
    case FailAction::kDeadline:
      g->ForceTrip(StatusCode::kDeadlineExceeded, where + ": injected deadline");
      break;
    case FailAction::kStates:
      g->ForceTrip(StatusCode::kResourceExhausted,
                   where + ": injected state-quota trip");
      break;
    case FailAction::kMemory:
      g->ForceTrip(StatusCode::kResourceExhausted,
                   where + ": injected memory-budget trip");
      break;
    case FailAction::kAllocFail:
      g->ForceTrip(StatusCode::kResourceExhausted,
                   where + ": injected allocation failure");
      break;
    case FailAction::kCancel:
      g->ForceTrip(StatusCode::kCancelled, where + ": injected cancellation");
      break;
    case FailAction::kNone:
      break;
  }
  RTP_OBS_COUNT("guard.failpoints.fired");
}

}  // namespace

bool FailpointsCompiledIn() { return true; }

void ArmFailpoint(std::string_view site, FailAction action,
                  int64_t after_hits) {
  std::lock_guard<std::mutex> lock(SitesMutex());
  SiteState& state = Sites()[std::string(site)];
  state.action = action;
  state.remaining = after_hits;
}

void DisarmAllFailpoints() {
  std::lock_guard<std::mutex> lock(SitesMutex());
  Sites().clear();
}

int64_t FailpointHits(std::string_view site) {
  std::lock_guard<std::mutex> lock(SitesMutex());
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.hits;
}

namespace internal {

void FailpointHit(std::string_view site) {
  FailAction to_fire = FailAction::kNone;
  {
    std::lock_guard<std::mutex> lock(SitesMutex());
    SiteState& state = Sites()[std::string(site)];
    ++state.hits;
    if (state.action != FailAction::kNone) {
      if (state.remaining > 0) {
        --state.remaining;
      } else {
        to_fire = state.action;
        state.action = FailAction::kNone;  // firing disarms
      }
    }
  }
  if (to_fire != FailAction::kNone) Fire(to_fire, site);
}

}  // namespace internal

#else  // !RTP_FAILPOINTS

bool FailpointsCompiledIn() { return false; }
void ArmFailpoint(std::string_view, FailAction, int64_t) {}
void DisarmAllFailpoints() {}
int64_t FailpointHits(std::string_view) { return 0; }

namespace internal {
void FailpointHit(std::string_view) {}
}  // namespace internal

#endif  // RTP_FAILPOINTS

}  // namespace rtp::guard
