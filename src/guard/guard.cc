#include "guard/guard.h"

#include <chrono>

#include "obs/log.h"
#include "obs/metrics.h"

namespace rtp::guard {

namespace internal {
thread_local GuardContext* tls_guard = nullptr;
}  // namespace internal

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

// One macro call site per code: RTP_OBS_COUNT caches its counter pointer
// in a call-site static, so routing all codes through one call site would
// bind every trip to whichever counter the first trip resolved.
void CountTrip(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
      RTP_OBS_COUNT("guard.trips.deadline");
      break;
    case StatusCode::kResourceExhausted:
      RTP_OBS_COUNT("guard.trips.resource");
      break;
    case StatusCode::kCancelled:
      RTP_OBS_COUNT("guard.trips.cancelled");
      break;
    default:
      RTP_OBS_COUNT("guard.trips.other");
      break;
  }
}

}  // namespace

GuardContext::GuardContext(const ExecutionBudget& budget, CancelToken* cancel,
                           int64_t start_ns)
    : budget_(budget),
      cancel_(cancel),
      start_ns_(start_ns > 0 ? start_ns : MonotonicNowNs()) {
  RTP_OBS_COUNT("guard.contexts");
}

Status GuardContext::status() const {
  if (!tripped_.load(std::memory_order_acquire)) return Status::OK();
  // trip_claimed_ is the release fence for trip_code_/trip_message_; by the
  // time tripped_ reads true those fields are already published.
  return Status(trip_code_, trip_message_);
}

void GuardContext::Trip(StatusCode code, std::string message) {
  bool expected = false;
  if (!trip_claimed_.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
    return;  // Another thread already tripped; first trip wins.
  }
  trip_code_ = code;
  trip_message_ = std::move(message);
  tripped_.store(true, std::memory_order_release);
  CountTrip(code);
  RTP_LOG(DEBUG) << "guard tripped: " << StatusCodeName(code) << ": "
                 << trip_message_;
}

void GuardContext::ForceTrip(StatusCode code, std::string message) {
  Trip(code, std::move(message));
}

void GuardContext::CheckDeadline() {
  if (budget_.deadline_ms <= 0) return;
  int64_t elapsed_ms = (MonotonicNowNs() - start_ns_) / 1'000'000;
  if (elapsed_ms >= budget_.deadline_ms) {
    Trip(StatusCode::kDeadlineExceeded,
         "deadline of " + std::to_string(budget_.deadline_ms) +
             "ms exceeded after " + std::to_string(elapsed_ms) + "ms");
  }
}

void GuardContext::Poll() {
  if (tripped_.load(std::memory_order_relaxed)) return;
  if (cancel_ != nullptr && cancel_->cancelled()) {
    Trip(StatusCode::kCancelled, "cancelled by caller");
    return;
  }
  int64_t step = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (budget_.max_steps > 0 && step > budget_.max_steps) {
    Trip(StatusCode::kResourceExhausted,
         "step quota of " + std::to_string(budget_.max_steps) + " exhausted");
    return;
  }
  // The deadline involves a clock read, so it is checked amortized; a
  // cancel or quota trip is still noticed on every poll.
  if (step % kDeadlineCheckInterval == 0) CheckDeadline();
}

void GuardContext::AddStates(int64_t n) {
  if (budget_.max_automaton_states <= 0) return;
  int64_t total = states_.fetch_add(n, std::memory_order_relaxed) + n;
  if (total > budget_.max_automaton_states) {
    Trip(StatusCode::kResourceExhausted,
         "automaton state quota of " +
             std::to_string(budget_.max_automaton_states) +
             " exhausted (reached " + std::to_string(total) + ")");
  }
}

void GuardContext::AddMemory(int64_t bytes) {
  if (budget_.max_memory_bytes <= 0) return;
  int64_t total = memory_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (total > budget_.max_memory_bytes) {
    Trip(StatusCode::kResourceExhausted,
         "memory budget of " + std::to_string(budget_.max_memory_bytes) +
             " bytes exhausted (accounted " + std::to_string(total) + ")");
  }
}

GuardContext* Current() { return internal::tls_guard; }

ScopedGuard::ScopedGuard(GuardContext* ctx) : previous_(internal::tls_guard) {
  internal::tls_guard = ctx;
}

ScopedGuard::~ScopedGuard() { internal::tls_guard = previous_; }

OptionalGuardScope::OptionalGuardScope(const ExecutionBudget& budget,
                                       CancelToken* cancel) {
  if (!budget.Limited() && cancel == nullptr) return;
  ctx_ = new GuardContext(budget, cancel);
  previous_ = internal::tls_guard;
  internal::tls_guard = ctx_;
}

OptionalGuardScope::~OptionalGuardScope() {
  if (ctx_ == nullptr) return;
  internal::tls_guard = previous_;
  delete ctx_;
}

Status CurrentStatus() {
  GuardContext* g = internal::tls_guard;
  if (g == nullptr) return Status::OK();
  return g->status();
}

bool IsResourceCode(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kCancelled;
}

bool IsResourceStatus(const Status& status) {
  return IsResourceCode(status.code());
}

}  // namespace rtp::guard
