#ifndef RTP_GUARD_GUARD_H_
#define RTP_GUARD_GUARD_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

// Cooperative execution budgets and cancellation.
//
// A GuardContext carries a resource budget (wall-clock deadline, automaton
// state quota, step quota, approximate memory quota) and an optional
// CancelToken. It is installed into a thread-local slot with ScopedGuard;
// hot loops poll it through the free functions below, which are a single
// TLS load plus a branch when no guard is installed.
//
// The contract is *cooperative and sticky*:
//   - once any limit trips, the context's status is set exactly once and
//     every later poll fails fast;
//   - loops respond to a trip by breaking early, leaving their partial
//     value structurally valid but semantically meaningless;
//   - every Status-returning API boundary that ran under a guard consults
//     guard::CurrentStatus() before returning, so a poisoned partial
//     result is never observed by a caller.
//
// A single GuardContext may be shared by several threads (the counters are
// relaxed atomics), but the usual pattern for batch APIs is one context
// per work item so that one pathological item cannot starve its siblings.
namespace rtp::guard {

// All limits use 0 to mean "unlimited".
struct ExecutionBudget {
  int64_t deadline_ms = 0;          // wall-clock, from GuardContext creation
  int64_t max_automaton_states = 0; // states interned across all automata
  int64_t max_steps = 0;            // loop iterations (polls)
  int64_t max_memory_bytes = 0;     // approximate accounted allocations

  bool Limited() const {
    return deadline_ms > 0 || max_automaton_states > 0 || max_steps > 0 ||
           max_memory_bytes > 0;
  }
};

// A cheap cancellation flag, settable from any thread. A single token is
// typically shared by every work item of one logical request.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

class GuardContext {
 public:
  // `start_ns` anchors the wall-clock deadline: 0 (the default) means "now",
  // a positive value is a MonotonicNowNs() timestamp taken earlier. A
  // serving layer passes the request's *arrival* time so the deadline
  // covers queue wait as well as execution (an admission-to-completion
  // deadline), not just the time after a pool worker picked the task up.
  explicit GuardContext(const ExecutionBudget& budget,
                        CancelToken* cancel = nullptr, int64_t start_ns = 0);

  GuardContext(const GuardContext&) = delete;
  GuardContext& operator=(const GuardContext&) = delete;

  // False once any limit has tripped or the token was cancelled.
  bool ok() const { return !tripped_.load(std::memory_order_acquire); }

  // OK while running; the sticky trip status afterwards.
  Status status() const;

  // One bounded-work "step": counts toward max_steps, checks the cancel
  // token, and (amortized, every kDeadlineCheckInterval steps) the
  // deadline.
  void Poll();

  // Resource accounting; both trip their quota immediately when exceeded.
  void AddStates(int64_t n);
  void AddMemory(int64_t bytes);

  // Forces a trip from outside the budget machinery (failpoints, direct
  // cancellation). No-op if already tripped.
  void ForceTrip(StatusCode code, std::string message);

  const ExecutionBudget& budget() const { return budget_; }

  // Consumption so far (tests calibrate budgets from these; approximate
  // under concurrency, exact for single-threaded runs).
  int64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  int64_t states() const { return states_.load(std::memory_order_relaxed); }
  int64_t memory() const { return memory_.load(std::memory_order_relaxed); }

 private:
  static constexpr int64_t kDeadlineCheckInterval = 256;

  void Trip(StatusCode code, std::string message);
  void CheckDeadline();

  const ExecutionBudget budget_;
  CancelToken* const cancel_;
  const int64_t start_ns_;

  std::atomic<int64_t> steps_{0};
  std::atomic<int64_t> states_{0};
  std::atomic<int64_t> memory_{0};

  std::atomic<bool> tripped_{false};
  // Guards the one-time write of trip_code_/trip_message_.
  std::atomic<bool> trip_claimed_{false};
  StatusCode trip_code_ = StatusCode::kOk;
  std::string trip_message_;
};

// The guard installed on the current thread, or nullptr when unguarded.
GuardContext* Current();

// The monotonic clock GuardContext deadlines are measured on, in
// nanoseconds. Callers that want a deadline to start before the context
// exists (e.g. at request arrival) capture this and pass it as `start_ns`.
int64_t MonotonicNowNs();

// Installs `ctx` into the thread-local slot for its scope and restores the
// previous guard (usually nullptr) on destruction.
class ScopedGuard {
 public:
  explicit ScopedGuard(GuardContext* ctx);
  ~ScopedGuard();

  ScopedGuard(const ScopedGuard&) = delete;
  ScopedGuard& operator=(const ScopedGuard&) = delete;

 private:
  GuardContext* previous_;
};

// Owns a GuardContext + ScopedGuard only when the budget is actually
// limited or a cancel token is supplied; otherwise it is a no-op. This is
// the standard way for an API boundary to honor per-call options without
// paying anything on the unlimited path.
class OptionalGuardScope {
 public:
  OptionalGuardScope(const ExecutionBudget& budget, CancelToken* cancel);
  ~OptionalGuardScope();

  OptionalGuardScope(const OptionalGuardScope&) = delete;
  OptionalGuardScope& operator=(const OptionalGuardScope&) = delete;

  bool engaged() const { return ctx_ != nullptr; }

 private:
  GuardContext* ctx_ = nullptr;
  GuardContext* previous_ = nullptr;
};

// True when a guard is installed on this thread.
inline bool Active();

// Polls the current guard (if any); returns false once it has tripped.
// Hot loops call this once per bounded unit of work and break on false.
inline bool KeepGoing();

// True while no guard has tripped, without counting a step.
inline bool Ok();

// Accounting shims; no-ops when unguarded.
inline void AccountStates(int64_t n);
inline void AccountMemory(int64_t bytes);

// OK when unguarded or not tripped; the sticky trip status otherwise.
// Every Status-returning boundary that ran guarded loops calls this.
Status CurrentStatus();

// True for the three statuses a budget/cancellation trip can produce.
bool IsResourceStatus(const Status& status);
bool IsResourceCode(StatusCode code);

namespace internal {
extern thread_local GuardContext* tls_guard;
}  // namespace internal

inline bool Active() { return internal::tls_guard != nullptr; }

inline bool KeepGoing() {
  GuardContext* g = internal::tls_guard;
  if (g == nullptr) return true;
  g->Poll();
  return g->ok();
}

inline bool Ok() {
  GuardContext* g = internal::tls_guard;
  return g == nullptr || g->ok();
}

inline void AccountStates(int64_t n) {
  GuardContext* g = internal::tls_guard;
  if (g != nullptr) g->AddStates(n);
}

inline void AccountMemory(int64_t bytes) {
  GuardContext* g = internal::tls_guard;
  if (g != nullptr) g->AddMemory(bytes);
}

}  // namespace rtp::guard

#endif  // RTP_GUARD_GUARD_H_
