#ifndef RTP_REGEX_NFA_H_
#define RTP_REGEX_NFA_H_

#include <cstdint>
#include <vector>

#include "regex/regex_ast.h"

namespace rtp::regex {

// Thompson NFA over LabelIds with epsilon and 'any label' transitions.
// Single initial state, single accepting state.
class Nfa {
 public:
  enum class EdgeKind : uint8_t { kEpsilon, kSymbol, kAny };

  struct Edge {
    EdgeKind kind;
    LabelId symbol;  // kSymbol only
    int32_t target;
  };

  // Thompson construction from an AST.
  static Nfa FromAst(const RegexNode& ast);

  int32_t initial() const { return initial_; }
  int32_t accepting() const { return accepting_; }
  int32_t NumStates() const { return static_cast<int32_t>(edges_.size()); }
  const std::vector<Edge>& EdgesFrom(int32_t state) const {
    return edges_[state];
  }

  // Expands `states` (in place) to its epsilon closure. `states` is a
  // sorted, deduplicated vector and stays so.
  void EpsilonClosure(std::vector<int32_t>* states) const;

 private:
  int32_t NewState() {
    edges_.emplace_back();
    return static_cast<int32_t>(edges_.size()) - 1;
  }
  void AddEdge(int32_t from, EdgeKind kind, LabelId symbol, int32_t to) {
    edges_[from].push_back(Edge{kind, symbol, to});
  }
  // Builds the fragment for `node`, returning {entry, exit} states.
  std::pair<int32_t, int32_t> Build(const RegexNode& node);

  std::vector<std::vector<Edge>> edges_;
  int32_t initial_ = 0;
  int32_t accepting_ = 0;
};

}  // namespace rtp::regex

#endif  // RTP_REGEX_NFA_H_
