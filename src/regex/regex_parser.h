#ifndef RTP_REGEX_REGEX_PARSER_H_
#define RTP_REGEX_REGEX_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "regex/regex_ast.h"

namespace rtp::regex {

// Parses the path regex syntax documented in regex_ast.h. Labels are
// interned into `alphabet`.
StatusOr<RegexAst> ParseRegex(Alphabet* alphabet, std::string_view input);

}  // namespace rtp::regex

#endif  // RTP_REGEX_REGEX_PARSER_H_
