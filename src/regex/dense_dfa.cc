#include "regex/dense_dfa.h"

#include "guard/guard.h"
#include "obs/metrics.h"

namespace rtp::regex {

DenseDfa DenseDfa::Build(const Dfa& dfa) {
  RTP_OBS_COUNT("regex.dense.builds");
  DenseDfa d;
  d.num_states_ = dfa.NumStates();
  d.initial_ = dfa.initial();

  // Assign columns in (state, label) first-seen order; the per-state label
  // maps are ordered, so the remap is deterministic for a given Dfa.
  LabelId max_label = 0;
  for (int32_t s = 0; s < d.num_states_; ++s) {
    for (const auto& [a, next] : dfa.state(s).next) {
      if (a > max_label) max_label = a;
    }
  }
  d.remap_.assign(static_cast<size_t>(max_label) + 1, kOtherColumn);
  int32_t columns = 1;  // column 0 is "other"
  for (int32_t s = 0; s < d.num_states_; ++s) {
    for (const auto& [a, next] : dfa.state(s).next) {
      if (d.remap_[a] == kOtherColumn) d.remap_[a] = columns++;
    }
  }
  d.num_columns_ = columns;

  // The dense table is the one allocation here whose size is a product of
  // input dimensions, so it is the one worth accounting.
  guard::AccountMemory(static_cast<int64_t>(columns) * d.num_states_ *
                       static_cast<int64_t>(sizeof(int32_t)));
  d.table_.assign(static_cast<size_t>(columns) * d.num_states_, kDeadState);
  d.accepting_.assign(static_cast<size_t>(d.num_states_), 0);
  for (int32_t s = 0; s < d.num_states_; ++s) {
    const Dfa::State& st = dfa.state(s);
    // Every column defaults to the state's `otherwise` transition; the
    // explicitly distinguished labels then overwrite their own column.
    for (int32_t c = 0; c < columns; ++c) {
      d.table_[static_cast<size_t>(c) * d.num_states_ + s] = st.otherwise;
    }
    for (const auto& [a, next] : st.next) {
      d.table_[static_cast<size_t>(d.remap_[a]) * d.num_states_ + s] = next;
    }
    d.accepting_[static_cast<size_t>(s)] = st.accepting ? 1 : 0;
  }

  d.column_live_.assign(static_cast<size_t>(columns), 0);
  for (int32_t c = 0; c < columns; ++c) {
    const int32_t* col = d.ColumnData(c);
    for (int32_t s = 0; s < d.num_states_; ++s) {
      if (col[s] != kDeadState) {
        d.column_live_[static_cast<size_t>(c)] = 1;
        break;
      }
    }
  }
  return d;
}

}  // namespace rtp::regex
