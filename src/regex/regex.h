#ifndef RTP_REGEX_REGEX_H_
#define RTP_REGEX_REGEX_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "regex/dense_dfa.h"
#include "regex/dfa.h"
#include "regex/regex_ast.h"
#include "regex/regex_parser.h"

namespace rtp::regex {

// A compiled regular expression: AST, minimized DFA, and the frozen dense
// transition table the evaluation hot path runs on. Copyable (clones the
// AST; the immutable dense table is shared). This is the value attached to
// pattern edges.
class Regex {
 public:
  // Parses and compiles. Fails on syntax errors.
  static StatusOr<Regex> Parse(Alphabet* alphabet, std::string_view text);

  // Compiles a programmatic AST.
  static Regex FromAst(RegexAst ast);

  // Like FromAst but skips DFA minimization (ablation experiments only;
  // semantics are identical, sizes are not).
  static Regex FromAstUnminimized(RegexAst ast);

  Regex(const Regex& other) { *this = other; }
  Regex& operator=(const Regex& other) {
    ast_ = CloneAst(*other.ast_);
    dfa_ = other.dfa_;
    dense_ = other.dense_;  // immutable, shared across copies
    return *this;
  }
  Regex(Regex&&) = default;
  Regex& operator=(Regex&&) = default;

  const RegexNode& ast() const { return *ast_; }
  const Dfa& dfa() const { return dfa_; }

  // Dense table compiled from dfa() at construction, shared by all copies.
  const DenseDfa& dense_dfa() const { return *dense_; }

  // Re-minimizes the DFA in place (rebuilding the dense table) when that
  // shrinks it. Parse/FromAst already minimize, so this is a no-op there;
  // the pattern compilation paths (DSL parser, XPath and path-FD
  // compilers) call it to make edge-DFA minimality an enforced invariant
  // rather than a side effect of which constructor built the edge.
  void EnsureMinimalDfa();

  // A pattern edge label must be proper: the empty word is not in the
  // language (Definition 1).
  bool IsProper() const { return !dfa_.AcceptsEmptyWord(); }

  bool Matches(std::span<const LabelId> word) const { return dfa_.Accepts(word); }

  std::string ToString(const Alphabet& alphabet) const {
    return regex::ToString(*ast_, alphabet);
  }

  // Size |A_e| used in the paper's |R| definition: DFA state count.
  int32_t AutomatonSize() const { return dfa_.NumStates(); }

 private:
  Regex(RegexAst ast, Dfa dfa)
      : ast_(std::move(ast)),
        dfa_(std::move(dfa)),
        dense_(std::make_shared<const DenseDfa>(DenseDfa::Build(dfa_))) {}

  RegexAst ast_;
  Dfa dfa_;
  std::shared_ptr<const DenseDfa> dense_;
};

}  // namespace rtp::regex

#endif  // RTP_REGEX_REGEX_H_
