#include "regex/regex.h"

#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace rtp::regex {

StatusOr<Regex> Regex::Parse(Alphabet* alphabet, std::string_view text) {
  RTP_OBS_COUNT("regex.compilations");
  RTP_OBS_SCOPED_TIMER("regex.compile_ns");
  RTP_ASSIGN_OR_RETURN(RegexAst ast, ParseRegex(alphabet, text));
  Dfa dfa = Dfa::FromAst(*ast).Minimize();
  return Regex(std::move(ast), std::move(dfa));
}

Regex Regex::FromAst(RegexAst ast) {
  RTP_OBS_COUNT("regex.compilations");
  RTP_OBS_SCOPED_TIMER("regex.compile_ns");
  Dfa dfa = Dfa::FromAst(*ast).Minimize();
  return Regex(std::move(ast), std::move(dfa));
}

Regex Regex::FromAstUnminimized(RegexAst ast) {
  Dfa dfa = Dfa::FromAst(*ast);
  return Regex(std::move(ast), std::move(dfa));
}

void Regex::EnsureMinimalDfa() {
  Dfa minimized = dfa_.Minimize();
  if (minimized.NumStates() < dfa_.NumStates()) {
    RTP_OBS_COUNT("regex.edge_minimizations");
    dfa_ = std::move(minimized);
    dense_ = std::make_shared<const DenseDfa>(DenseDfa::Build(dfa_));
  }
}

}  // namespace rtp::regex
