#include "regex/regex.h"

namespace rtp::regex {

StatusOr<Regex> Regex::Parse(Alphabet* alphabet, std::string_view text) {
  RTP_ASSIGN_OR_RETURN(RegexAst ast, ParseRegex(alphabet, text));
  Dfa dfa = Dfa::FromAst(*ast).Minimize();
  return Regex(std::move(ast), std::move(dfa));
}

Regex Regex::FromAst(RegexAst ast) {
  Dfa dfa = Dfa::FromAst(*ast).Minimize();
  return Regex(std::move(ast), std::move(dfa));
}

Regex Regex::FromAstUnminimized(RegexAst ast) {
  Dfa dfa = Dfa::FromAst(*ast);
  return Regex(std::move(ast), std::move(dfa));
}

}  // namespace rtp::regex
