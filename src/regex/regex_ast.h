#ifndef RTP_REGEX_REGEX_AST_H_
#define RTP_REGEX_REGEX_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/alphabet.h"

namespace rtp::regex {

// AST of regular expressions over the label alphabet Sigma.
//
// Concrete syntax (the "path" syntax used in edge labels):
//   union   := concat ('|' concat)*
//   concat  := postfix ('/' postfix)*
//   postfix := atom ('*' | '+' | '?')*
//   atom    := LABEL | '_' | '(' union ')'
// where LABEL is an XML name, optionally prefixed by '@' (attribute) or the
// reserved '#text'. '_' matches any single label. Example:
//   session/candidate/(exam|retake)/_*/mark
enum class RegexKind : uint8_t {
  kSymbol,    // one specific label
  kAny,       // '_': any single label
  kConcat,
  kUnion,
  kStar,
  kPlus,
  kOptional,
};

struct RegexNode {
  RegexKind kind;
  LabelId symbol = kInvalidLabel;             // kSymbol
  std::vector<std::unique_ptr<RegexNode>> children;  // operands

  explicit RegexNode(RegexKind k) : kind(k) {}
};

using RegexAst = std::unique_ptr<RegexNode>;

// Constructors for programmatic ASTs.
RegexAst Sym(LabelId label);
RegexAst Any();
RegexAst Cat(std::vector<RegexAst> parts);
RegexAst Alt(std::vector<RegexAst> parts);
RegexAst Star(RegexAst inner);
RegexAst Plus(RegexAst inner);
RegexAst Opt(RegexAst inner);
RegexAst CloneAst(const RegexNode& node);

// True iff the empty word belongs to the language (an expression labeling a
// pattern edge must be *proper*: not nullable).
bool IsNullable(const RegexNode& node);

// Renders the AST back to the concrete path syntax.
std::string ToString(const RegexNode& node, const Alphabet& alphabet);

}  // namespace rtp::regex

#endif  // RTP_REGEX_REGEX_AST_H_
