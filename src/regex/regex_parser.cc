#include "regex/regex_parser.h"

#include <cctype>

namespace rtp::regex {

namespace {

bool IsLabelStart(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '@' || c == '#' ||
         c == '_';
}
bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

class RegexParser {
 public:
  RegexParser(Alphabet* alphabet, std::string_view input)
      : alphabet_(alphabet), input_(input) {}

  StatusOr<RegexAst> Parse() {
    RTP_ASSIGN_OR_RETURN(RegexAst ast, ParseUnion());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Error("unexpected character '" + std::string(1, input_[pos_]) + "'");
    }
    return ast;
  }

 private:
  Status Error(std::string msg) const {
    return ParseError("regex: " + msg + " at offset " + std::to_string(pos_) +
                      " in \"" + std::string(input_) + "\"");
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char PeekNonSpace() {
    SkipSpace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }

  StatusOr<RegexAst> ParseUnion() {
    std::vector<RegexAst> parts;
    RTP_ASSIGN_OR_RETURN(RegexAst first, ParseConcat());
    parts.push_back(std::move(first));
    while (Eat('|')) {
      RTP_ASSIGN_OR_RETURN(RegexAst next, ParseConcat());
      parts.push_back(std::move(next));
    }
    return Alt(std::move(parts));
  }

  StatusOr<RegexAst> ParseConcat() {
    std::vector<RegexAst> parts;
    RTP_ASSIGN_OR_RETURN(RegexAst first, ParsePostfix());
    parts.push_back(std::move(first));
    while (Eat('/')) {
      RTP_ASSIGN_OR_RETURN(RegexAst next, ParsePostfix());
      parts.push_back(std::move(next));
    }
    return Cat(std::move(parts));
  }

  StatusOr<RegexAst> ParsePostfix() {
    RTP_ASSIGN_OR_RETURN(RegexAst ast, ParseAtom());
    while (true) {
      char c = PeekNonSpace();
      if (c == '*') {
        ++pos_;
        ast = Star(std::move(ast));
      } else if (c == '+') {
        ++pos_;
        ast = Plus(std::move(ast));
      } else if (c == '?') {
        ++pos_;
        ast = Opt(std::move(ast));
      } else {
        return ast;
      }
    }
  }

  StatusOr<RegexAst> ParseAtom() {
    SkipSpace();
    if (pos_ >= input_.size()) return Error("unexpected end of input");
    char c = input_[pos_];
    if (c == '(') {
      // Parenthesis nesting is the only recursion in this grammar; cap it
      // so adversarial input exhausts the budget, not the call stack.
      if (++depth_ > kMaxNestingDepth) {
        return ResourceExhaustedError(
            "regex: nesting depth exceeds " +
            std::to_string(kMaxNestingDepth) + " at offset " +
            std::to_string(pos_));
      }
      ++pos_;
      StatusOr<RegexAst> inner = ParseUnion();
      --depth_;
      RTP_RETURN_IF_ERROR(inner.status());
      if (!Eat(')')) return Error("expected ')'");
      return std::move(inner).value();
    }
    if (!IsLabelStart(c)) {
      return Error(std::string("expected a label, '_' or '(', got '") + c + "'");
    }
    size_t start = pos_;
    ++pos_;
    while (pos_ < input_.size() && IsLabelChar(input_[pos_])) ++pos_;
    std::string_view name = input_.substr(start, pos_ - start);
    if (name == "_") return Any();
    return Sym(alphabet_->Intern(name));
  }

  static constexpr int kMaxNestingDepth = 200;

  Alphabet* alphabet_;
  std::string_view input_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<RegexAst> ParseRegex(Alphabet* alphabet, std::string_view input) {
  return RegexParser(alphabet, input).Parse();
}

}  // namespace rtp::regex
