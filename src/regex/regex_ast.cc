#include "regex/regex_ast.h"

namespace rtp::regex {

RegexAst Sym(LabelId label) {
  auto node = std::make_unique<RegexNode>(RegexKind::kSymbol);
  node->symbol = label;
  return node;
}

RegexAst Any() { return std::make_unique<RegexNode>(RegexKind::kAny); }

RegexAst Cat(std::vector<RegexAst> parts) {
  RTP_CHECK(!parts.empty());
  if (parts.size() == 1) return std::move(parts[0]);
  auto node = std::make_unique<RegexNode>(RegexKind::kConcat);
  node->children = std::move(parts);
  return node;
}

RegexAst Alt(std::vector<RegexAst> parts) {
  RTP_CHECK(!parts.empty());
  if (parts.size() == 1) return std::move(parts[0]);
  auto node = std::make_unique<RegexNode>(RegexKind::kUnion);
  node->children = std::move(parts);
  return node;
}

namespace {
RegexAst Unary(RegexKind kind, RegexAst inner) {
  auto node = std::make_unique<RegexNode>(kind);
  node->children.push_back(std::move(inner));
  return node;
}
}  // namespace

RegexAst Star(RegexAst inner) { return Unary(RegexKind::kStar, std::move(inner)); }
RegexAst Plus(RegexAst inner) { return Unary(RegexKind::kPlus, std::move(inner)); }
RegexAst Opt(RegexAst inner) { return Unary(RegexKind::kOptional, std::move(inner)); }

RegexAst CloneAst(const RegexNode& node) {
  auto copy = std::make_unique<RegexNode>(node.kind);
  copy->symbol = node.symbol;
  copy->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    copy->children.push_back(CloneAst(*child));
  }
  return copy;
}

bool IsNullable(const RegexNode& node) {
  switch (node.kind) {
    case RegexKind::kSymbol:
    case RegexKind::kAny:
      return false;
    case RegexKind::kConcat:
      for (const auto& c : node.children) {
        if (!IsNullable(*c)) return false;
      }
      return true;
    case RegexKind::kUnion:
      for (const auto& c : node.children) {
        if (IsNullable(*c)) return true;
      }
      return false;
    case RegexKind::kStar:
    case RegexKind::kOptional:
      return true;
    case RegexKind::kPlus:
      return IsNullable(*node.children[0]);
  }
  return false;
}

namespace {

// Precedence: union (lowest), concat, postfix (highest).
void Render(const RegexNode& node, const Alphabet& alphabet, int parent_prec,
            std::string* out) {
  auto wrap = [&](int prec, auto&& body) {
    bool need = prec < parent_prec;
    if (need) out->push_back('(');
    body();
    if (need) out->push_back(')');
  };
  switch (node.kind) {
    case RegexKind::kSymbol:
      out->append(alphabet.Name(node.symbol));
      break;
    case RegexKind::kAny:
      out->push_back('_');
      break;
    case RegexKind::kConcat:
      wrap(1, [&] {
        for (size_t i = 0; i < node.children.size(); ++i) {
          if (i > 0) out->push_back('/');
          Render(*node.children[i], alphabet, 2, out);
        }
      });
      break;
    case RegexKind::kUnion:
      wrap(0, [&] {
        for (size_t i = 0; i < node.children.size(); ++i) {
          if (i > 0) out->push_back('|');
          Render(*node.children[i], alphabet, 1, out);
        }
      });
      break;
    case RegexKind::kStar:
      Render(*node.children[0], alphabet, 3, out);
      out->push_back('*');
      break;
    case RegexKind::kPlus:
      Render(*node.children[0], alphabet, 3, out);
      out->push_back('+');
      break;
    case RegexKind::kOptional:
      Render(*node.children[0], alphabet, 3, out);
      out->push_back('?');
      break;
  }
}

}  // namespace

std::string ToString(const RegexNode& node, const Alphabet& alphabet) {
  std::string out;
  Render(node, alphabet, 0, &out);
  return out;
}

}  // namespace rtp::regex
