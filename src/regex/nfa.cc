#include "regex/nfa.h"

#include <algorithm>

namespace rtp::regex {

Nfa Nfa::FromAst(const RegexNode& ast) {
  Nfa nfa;
  auto [entry, exit] = nfa.Build(ast);
  nfa.initial_ = entry;
  nfa.accepting_ = exit;
  return nfa;
}

std::pair<int32_t, int32_t> Nfa::Build(const RegexNode& node) {
  switch (node.kind) {
    case RegexKind::kSymbol: {
      int32_t a = NewState();
      int32_t b = NewState();
      AddEdge(a, EdgeKind::kSymbol, node.symbol, b);
      return {a, b};
    }
    case RegexKind::kAny: {
      int32_t a = NewState();
      int32_t b = NewState();
      AddEdge(a, EdgeKind::kAny, kInvalidLabel, b);
      return {a, b};
    }
    case RegexKind::kConcat: {
      auto [entry, cur] = Build(*node.children[0]);
      for (size_t i = 1; i < node.children.size(); ++i) {
        auto [next_entry, next_exit] = Build(*node.children[i]);
        AddEdge(cur, EdgeKind::kEpsilon, kInvalidLabel, next_entry);
        cur = next_exit;
      }
      return {entry, cur};
    }
    case RegexKind::kUnion: {
      int32_t a = NewState();
      int32_t b = NewState();
      for (const auto& child : node.children) {
        auto [entry, exit] = Build(*child);
        AddEdge(a, EdgeKind::kEpsilon, kInvalidLabel, entry);
        AddEdge(exit, EdgeKind::kEpsilon, kInvalidLabel, b);
      }
      return {a, b};
    }
    case RegexKind::kStar: {
      int32_t a = NewState();
      int32_t b = NewState();
      auto [entry, exit] = Build(*node.children[0]);
      AddEdge(a, EdgeKind::kEpsilon, kInvalidLabel, entry);
      AddEdge(a, EdgeKind::kEpsilon, kInvalidLabel, b);
      AddEdge(exit, EdgeKind::kEpsilon, kInvalidLabel, entry);
      AddEdge(exit, EdgeKind::kEpsilon, kInvalidLabel, b);
      return {a, b};
    }
    case RegexKind::kPlus: {
      auto [entry, exit] = Build(*node.children[0]);
      int32_t b = NewState();
      AddEdge(exit, EdgeKind::kEpsilon, kInvalidLabel, entry);
      AddEdge(exit, EdgeKind::kEpsilon, kInvalidLabel, b);
      return {entry, b};
    }
    case RegexKind::kOptional: {
      int32_t a = NewState();
      int32_t b = NewState();
      auto [entry, exit] = Build(*node.children[0]);
      AddEdge(a, EdgeKind::kEpsilon, kInvalidLabel, entry);
      AddEdge(a, EdgeKind::kEpsilon, kInvalidLabel, b);
      AddEdge(exit, EdgeKind::kEpsilon, kInvalidLabel, b);
      return {a, b};
    }
  }
  RTP_CHECK(false);
  return {0, 0};
}

void Nfa::EpsilonClosure(std::vector<int32_t>* states) const {
  std::vector<int32_t> stack(*states);
  std::vector<bool> seen(edges_.size(), false);
  for (int32_t s : *states) seen[s] = true;
  while (!stack.empty()) {
    int32_t s = stack.back();
    stack.pop_back();
    for (const Edge& e : edges_[s]) {
      if (e.kind == EdgeKind::kEpsilon && !seen[e.target]) {
        seen[e.target] = true;
        states->push_back(e.target);
        stack.push_back(e.target);
      }
    }
  }
  std::sort(states->begin(), states->end());
}

}  // namespace rtp::regex
