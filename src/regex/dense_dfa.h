#ifndef RTP_REGEX_DENSE_DFA_H_
#define RTP_REGEX_DENSE_DFA_H_

#include <cstdint>
#include <vector>

#include "common/alphabet.h"
#include "regex/dfa.h"

namespace rtp::regex {

// Frozen, flat transition table compiled from a Dfa for the evaluation hot
// path (MatchTables::Build and mapping enumeration do one Next() per
// (node, edge, state) triple; the std::map lookup inside Dfa::Next
// dominates those loops).
//
// The open-ended label alphabet is collapsed to a compact per-DFA column
// remap: every label some state explicitly distinguishes gets its own
// column, and every other label — including labels interned after the
// table was built — shares column 0 ("other"), which encodes the states'
// `otherwise` transitions. The table is column-major so the per-state
// inner loop of MatchTables::Build reads one contiguous column.
//
// A DenseDfa is immutable after Build and safe to share across threads.
class DenseDfa {
 public:
  // Column index shared by every label the source DFA does not
  // distinguish.
  static constexpr int32_t kOtherColumn = 0;

  DenseDfa() = default;

  static DenseDfa Build(const Dfa& dfa);

  int32_t initial() const { return initial_; }
  int32_t NumStates() const { return num_states_; }
  int32_t NumColumns() const { return num_columns_; }

  // The column of label `a`; labels outside the remap (never distinguished
  // by the source DFA, e.g. interned after Build) collapse to kOtherColumn.
  int32_t Column(LabelId a) const {
    return a < remap_.size() ? remap_[a] : kOtherColumn;
  }

  // Contiguous per-state successor array of one column: ColumnData(c)[s]
  // is the state reached from s on any label mapping to column c.
  const int32_t* ColumnData(int32_t col) const {
    return table_.data() + static_cast<size_t>(col) * num_states_;
  }

  // One step; `s` must be a live state (not kDeadState). The result may be
  // kDeadState.
  int32_t Next(int32_t s, LabelId a) const { return ColumnData(Column(a))[s]; }

  bool accepting(int32_t s) const {
    return s != kDeadState && accepting_[static_cast<size_t>(s)] != 0;
  }

  // True iff some state moves (to a non-dead state) on this column/label.
  // MatchTables uses this to skip an edge's whole per-state loop when a
  // node's label cannot advance any state of that edge's DFA.
  bool ColumnLive(int32_t col) const {
    return column_live_[static_cast<size_t>(col)] != 0;
  }
  bool AnyLive(LabelId a) const { return ColumnLive(Column(a)); }

 private:
  int32_t num_states_ = 0;
  int32_t num_columns_ = 1;
  int32_t initial_ = 0;
  std::vector<int32_t> remap_;       // LabelId -> column; missing => other
  std::vector<int32_t> table_;       // column-major: [col * num_states + s]
  std::vector<uint8_t> accepting_;   // per state
  std::vector<uint8_t> column_live_; // per column
};

}  // namespace rtp::regex

#endif  // RTP_REGEX_DENSE_DFA_H_
