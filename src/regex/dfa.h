#ifndef RTP_REGEX_DFA_H_
#define RTP_REGEX_DFA_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/alphabet.h"
#include "regex/nfa.h"
#include "regex/regex_ast.h"

namespace rtp::regex {

inline constexpr int32_t kDeadState = -1;

// Deterministic finite automaton over LabelIds.
//
// The label alphabet is open-ended (labels are interned on demand), so each
// state carries explicit transitions for the labels it distinguishes plus an
// `otherwise` transition covering every other label. kDeadState (-1) is the
// implicit rejecting sink.
class Dfa {
 public:
  struct State {
    std::map<LabelId, int32_t> next;  // ordered for deterministic output
    int32_t otherwise = kDeadState;
    bool accepting = false;
  };

  Dfa() = default;

  // Subset construction.
  static Dfa FromNfa(const Nfa& nfa);
  static Dfa FromAst(const RegexNode& ast) { return FromNfa(Nfa::FromAst(ast)); }

  // DFA accepting exactly the given single word.
  static Dfa FromWord(std::span<const LabelId> word);

  // Builds directly from explicit states (used by hedge automata, whose
  // horizontal languages are DFAs over tree-automaton state ids).
  static Dfa FromStates(std::vector<State> states, int32_t initial);

  // DFA accepting nothing / every word (including the empty one).
  static Dfa EmptyLanguage();
  static Dfa UniversalLanguage();

  int32_t initial() const { return initial_; }
  int32_t NumStates() const { return static_cast<int32_t>(states_.size()); }
  int64_t NumTransitions() const;
  const State& state(int32_t s) const { return states_[s]; }

  bool accepting(int32_t s) const {
    return s != kDeadState && states_[s].accepting;
  }

  // One step; `s` may be kDeadState (stays dead).
  int32_t Next(int32_t s, LabelId a) const {
    if (s == kDeadState) return kDeadState;
    const State& st = states_[s];
    auto it = st.next.find(a);
    return it != st.next.end() ? it->second : st.otherwise;
  }

  bool Accepts(std::span<const LabelId> word) const;

  // Language algebra. Results are trimmed but not minimized.
  static Dfa Intersection(const Dfa& a, const Dfa& b);
  static Dfa UnionOf(const Dfa& a, const Dfa& b);
  static Dfa Difference(const Dfa& a, const Dfa& b);
  Dfa Complement() const;

  // Removes states that are unreachable or cannot reach an accepting state
  // (redirecting their incoming transitions to kDeadState).
  Dfa Trim() const;

  // Moore partition-refinement minimization (input is trimmed first).
  Dfa Minimize() const;

  bool IsEmpty() const;

  // L(this) ⊆ L(other).
  bool IsSubsetOf(const Dfa& other) const {
    return Difference(*this, other).IsEmpty();
  }
  bool IsEquivalentTo(const Dfa& other) const {
    return IsSubsetOf(other) && other.IsSubsetOf(*this);
  }

  // Shortest accepted word, or nullopt if the language is empty. When a
  // shortest path uses an `otherwise` edge, a representative label not
  // explicitly distinguished by the state is chosen from `alphabet`,
  // interning a fresh label if every interned one is distinguished.
  std::optional<std::vector<LabelId>> ShortestWord(Alphabet* alphabet) const;

  // True iff the empty word is accepted (a pattern edge regex must be
  // proper, i.e. this must be false).
  bool AcceptsEmptyWord() const { return accepting(initial_); }

 private:
  enum class BoolOp { kAnd, kOr, kDiff };
  static Dfa Product(const Dfa& a, const Dfa& b, BoolOp op);

  std::vector<State> states_;
  int32_t initial_ = 0;
};

}  // namespace rtp::regex

#endif  // RTP_REGEX_DFA_H_
