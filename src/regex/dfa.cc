#include "regex/dfa.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>

#include "common/hashing.h"
#include "guard/failpoints.h"
#include "guard/guard.h"
#include "obs/metrics.h"

namespace rtp::regex {

namespace {

struct VectorHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0;
    for (int32_t x : v) h = HashMix(h, static_cast<uint64_t>(x) + 1);
    return static_cast<size_t>(h);
  }
};

}  // namespace

Dfa Dfa::FromNfa(const Nfa& nfa) {
  RTP_FAILPOINT("regex.determinize");
  Dfa dfa;
  std::unordered_map<std::vector<int32_t>, int32_t, VectorHash> ids;
  std::deque<std::vector<int32_t>> work;

  auto intern_set = [&](std::vector<int32_t> set) -> int32_t {
    if (set.empty()) return kDeadState;
    auto it = ids.find(set);
    if (it != ids.end()) return it->second;
    int32_t id = static_cast<int32_t>(dfa.states_.size());
    dfa.states_.emplace_back();
    bool acc = std::binary_search(set.begin(), set.end(), nfa.accepting());
    dfa.states_[id].accepting = acc;
    ids.emplace(set, id);
    work.push_back(std::move(set));
    guard::AccountStates(1);
    return id;
  };

  std::vector<int32_t> init = {nfa.initial()};
  nfa.EpsilonClosure(&init);
  dfa.initial_ = intern_set(std::move(init));

  // Subset construction is the classic exponential blowup site; a tripped
  // guard abandons the remaining worklist. Unexpanded states keep empty
  // transition maps, which Trim() below handles, and the caller's Status
  // boundary discards the partial DFA.
  while (!work.empty()) {
    if (!guard::KeepGoing()) break;
    std::vector<int32_t> set = std::move(work.front());
    work.pop_front();
    int32_t id = ids.at(set);

    // Collect moves: per explicit symbol, plus the 'any' move.
    std::map<LabelId, std::vector<int32_t>> sym_moves;
    std::vector<int32_t> any_move;
    for (int32_t s : set) {
      for (const Nfa::Edge& e : nfa.EdgesFrom(s)) {
        if (e.kind == Nfa::EdgeKind::kSymbol) {
          sym_moves[e.symbol].push_back(e.target);
        } else if (e.kind == Nfa::EdgeKind::kAny) {
          any_move.push_back(e.target);
        }
      }
    }
    auto normalize = [&nfa](std::vector<int32_t> v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      nfa.EpsilonClosure(&v);
      v.erase(std::unique(v.begin(), v.end()), v.end());
      return v;
    };

    std::vector<int32_t> any_closure = normalize(any_move);
    int32_t otherwise = intern_set(any_closure);
    dfa.states_[id].otherwise = otherwise;
    for (auto& [symbol, targets] : sym_moves) {
      std::vector<int32_t> merged = targets;
      merged.insert(merged.end(), any_move.begin(), any_move.end());
      int32_t target = intern_set(normalize(std::move(merged)));
      if (target != otherwise) {
        dfa.states_[id].next.emplace(symbol, target);
      }
    }
  }
  RTP_OBS_COUNT("regex.dfa.determinizations");
  RTP_OBS_COUNT_N("regex.dfa.states_built", dfa.states_.size());
  RTP_OBS_HISTOGRAM_RECORD("regex.determinize.blowup_states",
                           dfa.states_.size());
  return dfa.Trim();
}

Dfa Dfa::FromWord(std::span<const LabelId> word) {
  Dfa dfa;
  dfa.states_.resize(word.size() + 1);
  for (size_t i = 0; i < word.size(); ++i) {
    dfa.states_[i].next.emplace(word[i], static_cast<int32_t>(i) + 1);
  }
  dfa.states_.back().accepting = true;
  dfa.initial_ = 0;
  return dfa;
}

Dfa Dfa::FromStates(std::vector<State> states, int32_t initial) {
  Dfa dfa;
  dfa.states_ = std::move(states);
  dfa.initial_ = initial;
  RTP_CHECK(initial >= 0 && initial < dfa.NumStates());
  return dfa;
}

Dfa Dfa::EmptyLanguage() {
  Dfa dfa;
  dfa.states_.resize(1);
  dfa.initial_ = 0;
  return dfa;
}

Dfa Dfa::UniversalLanguage() {
  Dfa dfa;
  dfa.states_.resize(1);
  dfa.states_[0].accepting = true;
  dfa.states_[0].otherwise = 0;
  dfa.initial_ = 0;
  return dfa;
}

int64_t Dfa::NumTransitions() const {
  int64_t n = 0;
  for (const State& s : states_) {
    n += static_cast<int64_t>(s.next.size());
    if (s.otherwise != kDeadState) ++n;
  }
  return n;
}

bool Dfa::Accepts(std::span<const LabelId> word) const {
  int32_t s = initial_;
  for (LabelId a : word) {
    s = Next(s, a);
    if (s == kDeadState) return false;
  }
  return accepting(s);
}

Dfa Dfa::Product(const Dfa& a, const Dfa& b, BoolOp op) {
  // Pair states; kDeadState is a valid member of a pair for kOr/kDiff.
  Dfa out;
  std::map<std::pair<int32_t, int32_t>, int32_t> ids;
  std::deque<std::pair<int32_t, int32_t>> work;

  auto alive = [&](int32_t sa, int32_t sb) {
    switch (op) {
      case BoolOp::kAnd:
        return sa != kDeadState && sb != kDeadState;
      case BoolOp::kOr:
        return sa != kDeadState || sb != kDeadState;
      case BoolOp::kDiff:
        return sa != kDeadState;
    }
    return false;
  };
  auto accepting = [&](int32_t sa, int32_t sb) {
    bool aa = a.accepting(sa);
    bool bb = b.accepting(sb);
    switch (op) {
      case BoolOp::kAnd:
        return aa && bb;
      case BoolOp::kOr:
        return aa || bb;
      case BoolOp::kDiff:
        return aa && !bb;
    }
    return false;
  };
  auto intern = [&](int32_t sa, int32_t sb) -> int32_t {
    if (!alive(sa, sb)) return kDeadState;
    auto key = std::make_pair(sa, sb);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    int32_t id = static_cast<int32_t>(out.states_.size());
    out.states_.emplace_back();
    out.states_[id].accepting = accepting(sa, sb);
    ids.emplace(key, id);
    work.push_back(key);
    guard::AccountStates(1);
    return id;
  };

  out.initial_ = intern(a.initial_, b.initial_);
  if (out.initial_ == kDeadState) return EmptyLanguage();

  while (!work.empty()) {
    if (!guard::KeepGoing()) break;
    auto [sa, sb] = work.front();
    work.pop_front();
    int32_t id = ids.at({sa, sb});
    // Union of explicit keys from both sides.
    std::set<LabelId> keys;
    if (sa != kDeadState) {
      for (const auto& [k, _] : a.states_[sa].next) keys.insert(k);
    }
    if (sb != kDeadState) {
      for (const auto& [k, _] : b.states_[sb].next) keys.insert(k);
    }
    int32_t other = intern(sa == kDeadState ? kDeadState : a.states_[sa].otherwise,
                           sb == kDeadState ? kDeadState : b.states_[sb].otherwise);
    out.states_[id].otherwise = other;
    for (LabelId k : keys) {
      int32_t target = intern(a.Next(sa, k), b.Next(sb, k));
      if (target != other) out.states_[id].next.emplace(k, target);
    }
  }
  return out.Trim();
}

Dfa Dfa::Intersection(const Dfa& a, const Dfa& b) {
  return Product(a, b, BoolOp::kAnd);
}
Dfa Dfa::UnionOf(const Dfa& a, const Dfa& b) {
  return Product(a, b, BoolOp::kOr);
}
Dfa Dfa::Difference(const Dfa& a, const Dfa& b) {
  return Product(a, b, BoolOp::kDiff);
}

Dfa Dfa::Complement() const {
  // Make total by materializing the dead sink, then flip accepting flags.
  Dfa out = *this;
  int32_t sink = static_cast<int32_t>(out.states_.size());
  out.states_.emplace_back();
  out.states_[sink].otherwise = sink;
  for (State& s : out.states_) {
    if (s.otherwise == kDeadState) s.otherwise = sink;
    for (auto& [k, v] : s.next) {
      if (v == kDeadState) v = sink;
    }
  }
  for (State& s : out.states_) s.accepting = !s.accepting;
  return out;
}

Dfa Dfa::Trim() const {
  int32_t n = NumStates();
  // Forward reachability.
  std::vector<bool> reach(n, false);
  std::deque<int32_t> work = {initial_};
  reach[initial_] = true;
  while (!work.empty()) {
    int32_t s = work.front();
    work.pop_front();
    auto push = [&](int32_t t) {
      if (t != kDeadState && !reach[t]) {
        reach[t] = true;
        work.push_back(t);
      }
    };
    for (const auto& [_, t] : states_[s].next) push(t);
    push(states_[s].otherwise);
  }
  // Backward: can reach accepting. Build reverse adjacency (ignoring labels).
  std::vector<std::vector<int32_t>> rev(n);
  for (int32_t s = 0; s < n; ++s) {
    for (const auto& [_, t] : states_[s].next) {
      if (t != kDeadState) rev[t].push_back(s);
    }
    if (states_[s].otherwise != kDeadState) rev[states_[s].otherwise].push_back(s);
  }
  std::vector<bool> productive(n, false);
  for (int32_t s = 0; s < n; ++s) {
    if (states_[s].accepting && !productive[s]) {
      productive[s] = true;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    int32_t s = work.front();
    work.pop_front();
    for (int32_t p : rev[s]) {
      if (!productive[p]) {
        productive[p] = true;
        work.push_back(p);
      }
    }
  }

  std::vector<int32_t> remap(n, kDeadState);
  Dfa out;
  for (int32_t s = 0; s < n; ++s) {
    if (reach[s] && productive[s]) {
      remap[s] = static_cast<int32_t>(out.states_.size());
      out.states_.emplace_back();
    }
  }
  if (remap[initial_] == kDeadState) return EmptyLanguage();
  out.initial_ = remap[initial_];
  for (int32_t s = 0; s < n; ++s) {
    if (remap[s] == kDeadState) continue;
    State& dst = out.states_[remap[s]];
    dst.accepting = states_[s].accepting;
    int32_t other = states_[s].otherwise;
    dst.otherwise = other == kDeadState ? kDeadState : remap[other];
    for (const auto& [k, t] : states_[s].next) {
      int32_t mt = t == kDeadState ? kDeadState : remap[t];
      if (mt != dst.otherwise) dst.next.emplace(k, mt);
    }
  }
  return out;
}

Dfa Dfa::Minimize() const {
  RTP_OBS_COUNT("regex.dfa.minimizations");
  Dfa trimmed = Trim();
  int32_t n = trimmed.NumStates();
  if (n == 0) return trimmed;

  // Global explicit-key set: outside it, every state behaves per `otherwise`.
  std::set<LabelId> keys;
  for (const State& s : trimmed.states_) {
    for (const auto& [k, _] : s.next) keys.insert(k);
  }

  // Moore refinement. Class of kDeadState is -1.
  std::vector<int32_t> cls(n);
  for (int32_t s = 0; s < n; ++s) cls[s] = trimmed.states_[s].accepting ? 1 : 0;
  auto class_of = [&](int32_t s) { return s == kDeadState ? -1 : cls[s]; };

  bool changed = true;
  // A trip stops refinement between rounds; the under-refined partition
  // may merge inequivalent states, so callers must discard the result via
  // the guard's Status (every guarded boundary does).
  while (changed && guard::KeepGoing()) {
    changed = false;
    std::map<std::vector<int32_t>, int32_t> sig_ids;
    std::vector<int32_t> new_cls(n);
    for (int32_t s = 0; s < n; ++s) {
      std::vector<int32_t> sig;
      sig.reserve(keys.size() + 2);
      sig.push_back(cls[s]);
      for (LabelId k : keys) sig.push_back(class_of(trimmed.Next(s, k)));
      sig.push_back(class_of(trimmed.states_[s].otherwise));
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int32_t>(sig_ids.size()));
      new_cls[s] = it->second;
      (void)inserted;
    }
    if (new_cls != cls) {
      cls = std::move(new_cls);
      changed = true;
    }
  }

  int32_t num_classes = *std::max_element(cls.begin(), cls.end()) + 1;
  RTP_OBS_COUNT_N("regex.minimize.states_removed", n - num_classes);
  Dfa out;
  out.states_.resize(num_classes);
  out.initial_ = cls[trimmed.initial_];
  std::vector<bool> done(num_classes, false);
  for (int32_t s = 0; s < n; ++s) {
    int32_t c = cls[s];
    if (done[c]) continue;
    done[c] = true;
    State& dst = out.states_[c];
    dst.accepting = trimmed.states_[s].accepting;
    int32_t other = trimmed.states_[s].otherwise;
    dst.otherwise = other == kDeadState ? kDeadState : cls[other];
    for (LabelId k : keys) {
      int32_t t = trimmed.Next(s, k);
      int32_t mt = t == kDeadState ? kDeadState : cls[t];
      if (mt != dst.otherwise) dst.next.emplace(k, mt);
    }
  }
  return out;
}

bool Dfa::IsEmpty() const {
  std::vector<bool> seen(states_.size(), false);
  std::deque<int32_t> work = {initial_};
  seen[initial_] = true;
  while (!work.empty()) {
    int32_t s = work.front();
    work.pop_front();
    if (states_[s].accepting) return false;
    auto push = [&](int32_t t) {
      if (t != kDeadState && !seen[t]) {
        seen[t] = true;
        work.push_back(t);
      }
    };
    for (const auto& [_, t] : states_[s].next) push(t);
    push(states_[s].otherwise);
  }
  return true;
}

std::optional<std::vector<LabelId>> Dfa::ShortestWord(Alphabet* alphabet) const {
  struct Step {
    int32_t prev;
    LabelId symbol;
  };
  std::vector<Step> steps(states_.size(), Step{kDeadState, kInvalidLabel});
  std::vector<bool> seen(states_.size(), false);
  std::deque<int32_t> work = {initial_};
  seen[initial_] = true;
  int32_t found = kDeadState;
  while (!work.empty() && found == kDeadState) {
    int32_t s = work.front();
    work.pop_front();
    if (states_[s].accepting) {
      found = s;
      break;
    }
    auto visit = [&](int32_t t, LabelId a) {
      if (t != kDeadState && !seen[t]) {
        seen[t] = true;
        steps[t] = Step{s, a};
        work.push_back(t);
      }
    };
    for (const auto& [k, t] : states_[s].next) visit(t, k);
    if (states_[s].otherwise != kDeadState) {
      // Pick any interned label not explicitly distinguished here.
      LabelId rep = kInvalidLabel;
      for (LabelId id = 0; id < alphabet->size(); ++id) {
        if (states_[s].next.find(id) == states_[s].next.end()) {
          rep = id;
          break;
        }
      }
      if (rep == kInvalidLabel) {
        rep = alphabet->Intern("l$" + std::to_string(alphabet->size()));
      }
      visit(states_[s].otherwise, rep);
    }
  }
  if (found == kDeadState) return std::nullopt;
  std::vector<LabelId> word;
  for (int32_t s = found; s != initial_;) {
    word.push_back(steps[s].symbol);
    s = steps[s].prev;
  }
  std::reverse(word.begin(), word.end());
  return word;
}

}  // namespace rtp::regex
