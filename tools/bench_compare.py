#!/usr/bin/env python3
"""Compare two bench JSON files and fail on regressions.

usage: bench_compare.py BASELINE.json CURRENT.json [options]

Both inputs are run_benches.sh / RTP_BENCH_JSON outputs: one JSON object
per line with at least "bench" and "cpu_time" (ns). Lines may carry a
"run" tag ("before"/"after", as in BENCH_pr3.json); by default the
baseline uses its "after" lines (falling back to untagged ones), so the
committed before/after file works directly as a baseline.

For every benchmark on the allowlist that appears in both files, the
relative cpu_time change is computed; any benchmark slower than the
baseline by more than --threshold (default 10%) fails the comparison.
Allowlisted benchmarks missing from either file fail too — a vanished
benchmark must be an explicit allowlist edit, not a silent pass.
"""

import argparse
import json
import sys

# Named allowlist guarded by tools/run_ci.sh's perf leg: the dense-kernel
# hot paths on the exam workload at n=4096 (see docs/PERFORMANCE.md).
DEFAULT_ALLOWLIST = [
    "BM_MatchTablesR1/4096",
    "BM_MatchTablesR3/4096",
    "BM_EnumerateR2/4096",
    "BM_EnumerateR3/4096",
    "BM_CheckFd1/4096",
    "BM_CheckFd2/4096",
    "BM_CheckFd3/4096",
    "BM_CheckFd5/4096",
]


def load(path, prefer_run=None, role="input"):
    """bench name -> cpu_time; prefers lines whose "run" == prefer_run.

    Exits with a one-line diagnostic (no traceback) when the file is
    missing or malformed: a vanished baseline should read as a CI setup
    problem, not a Python crash.
    """
    times, tagged = {}, {}
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    d = json.loads(line)
                    name, cpu = d["bench"], float(d["cpu_time"])
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError) as e:
                    sys.exit(
                        f"error: {path}:{lineno}: not a bench result line "
                        f'(need one JSON object with "bench" and '
                        f'"cpu_time" per line): {e}')
                if prefer_run is not None and d.get("run") == prefer_run:
                    tagged[name] = cpu
                else:
                    times[name] = cpu
    except OSError as e:
        hint = (" — regenerate it with tools/run_benches.sh"
                if role == "baseline" else "")
        sys.exit(f"error: cannot read {role} file {path}: "
                 f"{e.strerror or e}{hint}")
    if not times and not tagged:
        sys.exit(f"error: {role} file {path} contains no bench results")
    times.update(tagged)
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="max tolerated relative cpu_time increase (default 0.10)")
    parser.add_argument(
        "--bench", action="append", default=None, metavar="NAME",
        help="allowlist entry (repeatable; default: built-in list)")
    parser.add_argument(
        "--baseline-run", default="after",
        help='preferred "run" tag in the baseline (default "after")')
    args = parser.parse_args()

    baseline = load(args.baseline, prefer_run=args.baseline_run,
                    role="baseline")
    current = load(args.current, role="current")
    allowlist = args.bench if args.bench else DEFAULT_ALLOWLIST

    failures = []
    for name in allowlist:
        if name not in baseline:
            failures.append(
                f"{name}: missing from baseline {args.baseline} — the "
                f"benchmark vanished or was renamed; update the allowlist "
                f"(--bench / DEFAULT_ALLOWLIST) or the baseline file")
            continue
        if name not in current:
            failures.append(
                f"{name}: missing from current {args.current} — the "
                f"benchmark vanished or was renamed; update the allowlist "
                f"(--bench / DEFAULT_ALLOWLIST) if that is intentional")
            continue
        base, cur = baseline[name], current[name]
        change = (cur - base) / base
        status = "FAIL" if change > args.threshold else "ok"
        print(f"{status:4s} {name:30s} {base / 1e6:10.3f}ms -> "
              f"{cur / 1e6:10.3f}ms  {change:+7.1%}")
        if change > args.threshold:
            failures.append(
                f"{name}: {change:+.1%} (threshold {args.threshold:.0%})")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(allowlist)} allowlisted benchmarks within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
