// rtp_cli — command-line front end for the library.
//
//   rtp_cli validate    <schema-file> <xml-file>
//   rtp_cli checkfd     <fd-file> <xml-file>
//   rtp_cli eval        <pattern-file> <xml-file>
//   rtp_cli xpath       <query> <xml-file>
//   rtp_cli independent <fd-file> <update-pattern-file> [schema-file]
//   rtp_cli materialize <view-pattern-file> <xml-file>
//
// Pattern/FD files use the DSL of pattern_parser.h; schema files the DSL
// of schema.h. Exit code 0 means "holds" (valid / satisfied / independent),
// 1 means the negative verdict, 2 a usage or input error.

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "fd/fd_checker.h"
#include "independence/criterion.h"
#include "automata/pattern_compiler.h"
#include "pattern/dot_export.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "schema/schema.h"
#include "update/update_class.h"
#include "view/view.h"
#include "xml/xml_io.h"
#include "xpath/xpath.h"

namespace {

using namespace rtp;

int Usage() {
  std::fprintf(stderr,
               "usage: rtp_cli validate    <schema-file> <xml-file>\n"
               "       rtp_cli checkfd     <fd-file> <xml-file>\n"
               "       rtp_cli eval        <pattern-file> <xml-file>\n"
               "       rtp_cli xpath       <query> <xml-file>\n"
               "       rtp_cli independent <fd-file> <update-file> "
               "[schema-file]\n"
               "       rtp_cli materialize <view-file> <xml-file>\n"
               "       rtp_cli dot         pattern|automaton <pattern-file>\n");
  return 2;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

#define CLI_ASSIGN(lhs, expr)                                       \
  auto lhs##_or = (expr);                                           \
  if (!lhs##_or.ok()) {                                             \
    std::fprintf(stderr, "error: %s\n",                             \
                 lhs##_or.status().ToString().c_str());             \
    return 2;                                                       \
  }                                                                 \
  auto lhs = std::move(lhs##_or).value();

int CmdValidate(Alphabet* alphabet, const std::string& schema_path,
                const std::string& xml_path) {
  CLI_ASSIGN(schema_text, ReadFile(schema_path));
  CLI_ASSIGN(xml_text, ReadFile(xml_path));
  CLI_ASSIGN(schema, schema::Schema::Parse(alphabet, schema_text));
  CLI_ASSIGN(doc, xml::ParseXml(alphabet, xml_text));
  bool valid = schema.Validate(doc);
  std::printf("%s\n", valid ? "valid" : "INVALID");
  return valid ? 0 : 1;
}

int CmdCheckFd(Alphabet* alphabet, const std::string& fd_path,
               const std::string& xml_path) {
  CLI_ASSIGN(fd_text, ReadFile(fd_path));
  CLI_ASSIGN(xml_text, ReadFile(xml_path));
  CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, fd_text));
  CLI_ASSIGN(fd, fd::FunctionalDependency::FromParsed(std::move(parsed)));
  CLI_ASSIGN(doc, xml::ParseXml(alphabet, xml_text));
  fd::CheckResult result = fd::CheckFd(fd, doc);
  std::printf("%s (%zu mappings, %zu groups)\n",
              result.satisfied ? "satisfied" : "VIOLATED",
              result.num_mappings, result.num_groups);
  if (!result.satisfied) {
    std::printf("%s", result.violation->Describe(doc, fd).c_str());
  }
  return result.satisfied ? 0 : 1;
}

int CmdEval(Alphabet* alphabet, const std::string& pattern_path,
            const std::string& xml_path) {
  CLI_ASSIGN(pattern_text, ReadFile(pattern_path));
  CLI_ASSIGN(xml_text, ReadFile(xml_path));
  CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, pattern_text));
  CLI_ASSIGN(doc, xml::ParseXml(alphabet, xml_text));
  auto tuples = pattern::EvaluateSelected(parsed.pattern, doc);
  std::printf("%zu tuple(s)\n", tuples.size());
  for (const auto& tuple : tuples) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i ? "\t" : "",
                  xml::WriteXmlSubtree(doc, tuple[i], /*indent=*/false).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int CmdXPath(Alphabet* alphabet, const std::string& query,
             const std::string& xml_path) {
  CLI_ASSIGN(xml_text, ReadFile(xml_path));
  CLI_ASSIGN(compiled, xpath::CompileXPath(alphabet, query));
  CLI_ASSIGN(doc, xml::ParseXml(alphabet, xml_text));
  std::vector<xml::NodeId> nodes = xpath::EvaluateXPath(compiled, doc);
  std::printf("%zu node(s)\n", nodes.size());
  for (xml::NodeId n : nodes) {
    std::printf("%s\n",
                xml::WriteXmlSubtree(doc, n, /*indent=*/false).c_str());
  }
  return 0;
}

int CmdIndependent(Alphabet* alphabet, const std::string& fd_path,
                   const std::string& update_path,
                   const std::string& schema_path) {
  CLI_ASSIGN(fd_text, ReadFile(fd_path));
  CLI_ASSIGN(update_text, ReadFile(update_path));
  CLI_ASSIGN(fd_parsed, pattern::ParsePattern(alphabet, fd_text));
  CLI_ASSIGN(fd, fd::FunctionalDependency::FromParsed(std::move(fd_parsed)));
  CLI_ASSIGN(u_parsed, pattern::ParsePattern(alphabet, update_text));
  CLI_ASSIGN(cls, update::UpdateClass::FromParsed(std::move(u_parsed)));

  std::optional<schema::Schema> schema_storage;
  const schema::Schema* schema = nullptr;
  if (!schema_path.empty()) {
    CLI_ASSIGN(schema_text, ReadFile(schema_path));
    CLI_ASSIGN(parsed_schema, schema::Schema::Parse(alphabet, schema_text));
    schema_storage = std::move(parsed_schema);
    schema = &*schema_storage;
  }

  independence::CriterionOptions options;
  options.want_conflict_candidate = true;
  CLI_ASSIGN(verdict, independence::CheckIndependence(fd, cls, schema,
                                                      alphabet, options));
  if (verdict.independent) {
    std::printf("independent (criterion IC holds; product size %lld)\n",
                static_cast<long long>(verdict.product_size));
    return 0;
  }
  std::printf("unknown — the criterion cannot rule out an impact\n");
  if (verdict.conflict_candidate.has_value()) {
    std::printf("conflict candidate document:\n%s",
                xml::WriteXml(*verdict.conflict_candidate).c_str());
  }
  return 1;
}

int CmdDot(Alphabet* alphabet, const std::string& what,
           const std::string& pattern_path) {
  CLI_ASSIGN(pattern_text, ReadFile(pattern_path));
  CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, pattern_text));
  if (what == "pattern") {
    std::printf("%s", pattern::PatternToDot(
                          parsed.pattern, *alphabet,
                          parsed.context.value_or(pattern::kInvalidPatternNode))
                          .c_str());
    return 0;
  }
  if (what == "automaton") {
    automata::HedgeAutomaton automaton = automata::CompilePattern(
        parsed.pattern, automata::MarkMode::kTraceAndSelectedSubtrees);
    std::printf("%s", automata::AutomatonToDot(automaton, *alphabet).c_str());
    return 0;
  }
  std::fprintf(stderr, "error: dot target must be 'pattern' or 'automaton'\n");
  return 2;
}

int CmdMaterialize(Alphabet* alphabet, const std::string& view_path,
                   const std::string& xml_path) {
  CLI_ASSIGN(view_text, ReadFile(view_path));
  CLI_ASSIGN(xml_text, ReadFile(xml_path));
  CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, view_text));
  CLI_ASSIGN(v, view::View::FromParsed(std::move(parsed)));
  CLI_ASSIGN(doc, xml::ParseXml(alphabet, xml_text));
  xml::Document result = v.Materialize(doc);
  std::printf("%s", xml::WriteXml(result).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  Alphabet alphabet;
  if (cmd == "validate" && argc == 4) {
    return CmdValidate(&alphabet, argv[2], argv[3]);
  }
  if (cmd == "checkfd" && argc == 4) {
    return CmdCheckFd(&alphabet, argv[2], argv[3]);
  }
  if (cmd == "eval" && argc == 4) {
    return CmdEval(&alphabet, argv[2], argv[3]);
  }
  if (cmd == "xpath" && argc == 4) {
    return CmdXPath(&alphabet, argv[2], argv[3]);
  }
  if (cmd == "independent" && (argc == 4 || argc == 5)) {
    return CmdIndependent(&alphabet, argv[2], argv[3],
                          argc == 5 ? argv[4] : "");
  }
  if (cmd == "materialize" && argc == 4) {
    return CmdMaterialize(&alphabet, argv[2], argv[3]);
  }
  if (cmd == "dot" && argc == 4) {
    return CmdDot(&alphabet, argv[2], argv[3]);
  }
  return Usage();
}
