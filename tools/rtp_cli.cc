// rtp_cli — command-line front end for the library.
//
//   rtp_cli [global flags] validate    <schema-file> <xml-file>
//   rtp_cli [global flags] checkfd     <fd-file> <xml-file>...
//   rtp_cli [global flags] eval        <pattern-file> <xml-file>...
//   rtp_cli [global flags] xpath       <query> <xml-file>
//   rtp_cli [global flags] independent <fd-file> <update-pattern-file>
//                                      [schema-file]
//   rtp_cli [global flags] matrix      <fd-file>[,<fd-file>...]
//                                      <update-file>[,<update-file>...]
//                                      [schema-file]
//   rtp_cli [global flags] materialize <view-pattern-file> <xml-file>
//   rtp_cli [global flags] explain     eval|checkfd|matrix <args...>
//
// `explain` runs the wrapped subcommand with per-operation profiling
// forced on and appends an EXPLAIN ANALYZE-style report per work item
// (phase tree with wall times, metric deltas, guard budget consumption)
// to stdout. The same structured data is available as JSON from any
// supporting subcommand via --profile.
//
// Global flags (accepted anywhere on the command line, any subcommand):
//   --stats[=<file>]     after the command runs, dump the obs metrics
//                        registry as JSON to <file> (or stderr).
//   --profile[=<file>]   collect per-operation query profiles (eval,
//                        checkfd, matrix: one per document / matrix cell)
//                        and dump them as a JSON array to <file> (or
//                        stderr).
//   --prometheus[=<file>] after the command runs, dump the metrics
//                        registry in Prometheus text exposition format.
//   --log-level=<level>  enable structured JSON-lines logging on stderr
//                        (debug|info|warn|error|off; default off, also
//                        settable via RTP_LOG_LEVEL).
//   --trace-out=<file>   record phase spans and write chrome://tracing
//                        JSON to <file>.
//   --jobs=N             worker threads for the batch subcommands (matrix,
//                        multi-document checkfd/eval); 0 means "one per
//                        hardware thread". Results are byte-identical for
//                        every N (default 1: serial).
//   --deadline-ms=N      wall-clock budget (see src/guard). Batch
//                        subcommands apply it per work item (per document
//                        for checkfd/eval, per pair for matrix) and
//                        degrade those items alone; single-shot commands
//                        apply it to the whole command and exit 2 with the
//                        resource status when it trips.
//   --max-states=N       automaton-state quota per budgeted run.
//   --max-memory-mb=N    approximate memory budget (evaluation tables,
//                        dense DFA tables) per budgeted run.
//
// checkfd and eval accept several XML files; the documents are processed
// in parallel under --jobs but reported strictly in command-line order,
// and eval prints each document's tuples sorted by document order, so the
// output is deterministic.
//
// Pattern/FD files use the DSL of pattern_parser.h; schema files the DSL
// of schema.h. Exit code 0 means "holds" (valid / satisfied / independent
// — for matrix: every pair independent), 1 means the negative verdict, 2 a
// usage or input error. Input errors print the full status detail (code
// name + message) on stderr.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exec/automaton_cache.h"
#include "exec/thread_pool.h"
#include "fd/fd_checker.h"
#include "guard/guard.h"
#include "independence/criterion.h"
#include "independence/matrix.h"
#include "automata/pattern_compiler.h"
#include "obs/exposition.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "pattern/dot_export.h"
#include "pattern/evaluator.h"
#include "pattern/pattern_parser.h"
#include "schema/schema.h"
#include "update/update_class.h"
#include "view/view.h"
#include "xml/xml_io.h"
#include "xpath/xpath.h"

namespace {

using namespace rtp;

int Usage(const char* detail = nullptr) {
  if (detail != nullptr) std::fprintf(stderr, "error: %s\n", detail);
  std::fprintf(stderr,
               "usage: rtp_cli [flags] validate    <schema-file> <xml-file>\n"
               "       rtp_cli [flags] checkfd     <fd-file> <xml-file>...\n"
               "       rtp_cli [flags] eval        <pattern-file> "
               "<xml-file>...\n"
               "       rtp_cli [flags] xpath       <query> <xml-file>\n"
               "       rtp_cli [flags] independent <fd-file> <update-file> "
               "[schema-file]\n"
               "       rtp_cli [flags] matrix      <fd-file>[,...] "
               "<update-file>[,...] [schema-file]\n"
               "       rtp_cli [flags] materialize <view-file> <xml-file>\n"
               "       rtp_cli [flags] dot         pattern|automaton "
               "<pattern-file>\n"
               "       rtp_cli [flags] explain     eval|checkfd|matrix "
               "<args...>\n"
               "flags: --stats[=<file>]   dump obs metrics JSON after the "
               "command\n"
               "       --profile[=<file>] dump per-operation query profiles "
               "as JSON\n"
               "       --prometheus[=<file>] dump metrics in Prometheus "
               "text format\n"
               "       --log-level=<lvl>  structured logging on stderr "
               "(debug|info|warn|error|off)\n"
               "       --trace-out=<file> write chrome://tracing phase "
               "spans\n"
               "       --jobs=N           worker threads for batch "
               "subcommands (0 = hardware)\n"
               "       --deadline-ms=N    wall-clock budget (per work item "
               "for batch subcommands)\n"
               "       --max-states=N     automaton-state quota per "
               "budgeted run\n"
               "       --max-memory-mb=N  approximate memory budget per "
               "budgeted run\n");
  return 2;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

#define CLI_ASSIGN(lhs, expr)                                       \
  auto lhs##_or = (expr);                                           \
  if (!lhs##_or.ok()) {                                             \
    std::fprintf(stderr, "error: %s\n",                             \
                 lhs##_or.status().ToString().c_str());             \
    return 2;                                                       \
  }                                                                 \
  auto lhs = std::move(lhs##_or).value();

int CmdValidate(Alphabet* alphabet, const std::string& schema_path,
                const std::string& xml_path) {
  CLI_ASSIGN(schema_text, ReadFile(schema_path));
  CLI_ASSIGN(xml_text, ReadFile(xml_path));
  CLI_ASSIGN(schema, schema::Schema::Parse(alphabet, schema_text));
  CLI_ASSIGN(doc, xml::ParseXml(alphabet, xml_text));
  bool valid = schema.Validate(doc);
  std::printf("%s\n", valid ? "valid" : "INVALID");
  return valid ? 0 : 1;
}

// Parses every XML file serially (parsing interns labels into the shared
// alphabet, which is not thread-safe); evaluation then runs in parallel.
StatusOr<std::vector<xml::Document>> ParseXmlFiles(
    Alphabet* alphabet, const std::vector<std::string>& paths) {
  std::vector<xml::Document> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    RTP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
    RTP_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseXml(alphabet, text));
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<const xml::Document*> DocPointers(
    const std::vector<xml::Document>& docs) {
  std::vector<const xml::Document*> ptrs;
  ptrs.reserve(docs.size());
  for (const xml::Document& doc : docs) ptrs.push_back(&doc);
  return ptrs;
}

int CmdCheckFd(Alphabet* alphabet, const std::string& fd_path,
               const std::vector<std::string>& xml_paths, int jobs,
               const guard::ExecutionBudget& budget,
               std::vector<obs::QueryProfile>* profiles) {
  CLI_ASSIGN(fd_text, ReadFile(fd_path));
  CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, fd_text));
  CLI_ASSIGN(fd, fd::FunctionalDependency::FromParsed(std::move(parsed)));
  CLI_ASSIGN(docs, ParseXmlFiles(alphabet, xml_paths));
  fd::BatchCheckOptions options;
  options.jobs = jobs;
  options.check.budget = budget;
  options.profiles = profiles;
  std::vector<fd::CheckResult> results =
      fd::CheckFdBatch(fd, DocPointers(docs), options);
  bool all_satisfied = true;
  bool any_over_budget = false;
  for (size_t d = 0; d < results.size(); ++d) {
    const fd::CheckResult& result = results[d];
    // Single-document invocations keep the historical un-prefixed format.
    if (xml_paths.size() > 1) std::printf("%s: ", xml_paths[d].c_str());
    if (!result.status.ok()) {
      // The budget tripped on this document: there is no verdict, which
      // is neither "satisfied" nor "violated".
      any_over_budget = true;
      std::printf("no verdict (%s)\n", result.status.ToString().c_str());
      continue;
    }
    all_satisfied = all_satisfied && result.satisfied;
    std::printf("%s (%zu mappings, %zu groups)\n",
                result.satisfied ? "satisfied" : "VIOLATED",
                result.num_mappings, result.num_groups);
    if (!result.satisfied) {
      std::printf("%s", result.violation->Describe(docs[d], fd).c_str());
    }
  }
  if (any_over_budget) return 2;
  return all_satisfied ? 0 : 1;
}

int CmdEval(Alphabet* alphabet, const std::string& pattern_path,
            const std::vector<std::string>& xml_paths, int jobs,
            const guard::ExecutionBudget& budget,
            std::vector<obs::QueryProfile>* profiles) {
  CLI_ASSIGN(pattern_text, ReadFile(pattern_path));
  CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, pattern_text));
  CLI_ASSIGN(docs, ParseXmlFiles(alphabet, xml_paths));
  pattern::EvalBatchOptions options;
  options.jobs = jobs;
  options.budget = budget;
  options.profiles = profiles;
  std::vector<Status> statuses;
  auto per_doc = pattern::EvaluateSelectedBatch(parsed.pattern,
                                                DocPointers(docs), options,
                                                &statuses);
  bool any_over_budget = false;
  for (size_t d = 0; d < per_doc.size(); ++d) {
    if (!statuses[d].ok()) {
      any_over_budget = true;
      if (xml_paths.size() > 1) std::printf("%s: ", xml_paths[d].c_str());
      std::printf("no result (%s)\n", statuses[d].ToString().c_str());
      continue;
    }
    const xml::Document& doc = docs[d];
    auto& tuples = per_doc[d];
    // Emit tuples sorted by document order (lexicographic preorder
    // comparison), not in enumeration order: enumeration order is an
    // implementation detail of the match tables, and output must be
    // stable for any --jobs value and across evaluator changes.
    std::sort(tuples.begin(), tuples.end(),
              [&doc](const std::vector<xml::NodeId>& a,
                     const std::vector<xml::NodeId>& b) {
                for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                  uint32_t pa = doc.PreorderIndex(a[i]);
                  uint32_t pb = doc.PreorderIndex(b[i]);
                  if (pa != pb) return pa < pb;
                }
                return a.size() < b.size();
              });
    if (xml_paths.size() > 1) std::printf("%s: ", xml_paths[d].c_str());
    std::printf("%zu tuple(s)\n", tuples.size());
    for (const auto& tuple : tuples) {
      for (size_t i = 0; i < tuple.size(); ++i) {
        std::printf(
            "%s%s", i ? "\t" : "",
            xml::WriteXmlSubtree(doc, tuple[i], /*indent=*/false).c_str());
      }
      std::printf("\n");
    }
  }
  return any_over_budget ? 2 : 0;
}

int CmdXPath(Alphabet* alphabet, const std::string& query,
             const std::string& xml_path) {
  CLI_ASSIGN(xml_text, ReadFile(xml_path));
  CLI_ASSIGN(compiled, xpath::CompileXPath(alphabet, query));
  CLI_ASSIGN(doc, xml::ParseXml(alphabet, xml_text));
  std::vector<xml::NodeId> nodes = xpath::EvaluateXPath(compiled, doc);
  std::printf("%zu node(s)\n", nodes.size());
  for (xml::NodeId n : nodes) {
    std::printf("%s\n",
                xml::WriteXmlSubtree(doc, n, /*indent=*/false).c_str());
  }
  return 0;
}

int CmdIndependent(Alphabet* alphabet, const std::string& fd_path,
                   const std::string& update_path,
                   const std::string& schema_path) {
  CLI_ASSIGN(fd_text, ReadFile(fd_path));
  CLI_ASSIGN(update_text, ReadFile(update_path));
  CLI_ASSIGN(fd_parsed, pattern::ParsePattern(alphabet, fd_text));
  CLI_ASSIGN(fd, fd::FunctionalDependency::FromParsed(std::move(fd_parsed)));
  CLI_ASSIGN(u_parsed, pattern::ParsePattern(alphabet, update_text));
  CLI_ASSIGN(cls, update::UpdateClass::FromParsed(std::move(u_parsed)));

  std::optional<schema::Schema> schema_storage;
  const schema::Schema* schema = nullptr;
  if (!schema_path.empty()) {
    CLI_ASSIGN(schema_text, ReadFile(schema_path));
    CLI_ASSIGN(parsed_schema, schema::Schema::Parse(alphabet, schema_text));
    schema_storage = std::move(parsed_schema);
    schema = &*schema_storage;
  }

  independence::CriterionOptions options;
  options.want_conflict_candidate = true;
  CLI_ASSIGN(verdict, independence::CheckIndependence(fd, cls, schema,
                                                      alphabet, options));
  if (verdict.independent) {
    std::printf("independent (criterion IC holds; product size %lld)\n",
                static_cast<long long>(verdict.product_size));
    return 0;
  }
  std::printf("unknown — the criterion cannot rule out an impact\n");
  if (verdict.conflict_candidate.has_value()) {
    std::printf("conflict candidate document:\n%s",
                xml::WriteXml(*verdict.conflict_candidate).c_str());
  }
  return 1;
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    parts.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int CmdMatrix(Alphabet* alphabet, const std::string& fd_list,
              const std::string& update_list, const std::string& schema_path,
              int jobs, const guard::ExecutionBudget& budget,
              std::vector<obs::QueryProfile>* profiles) {
  std::vector<std::string> fd_paths = SplitCommaList(fd_list);
  std::vector<std::string> update_paths = SplitCommaList(update_list);

  std::vector<fd::FunctionalDependency> fds;
  fds.reserve(fd_paths.size());
  for (const std::string& path : fd_paths) {
    CLI_ASSIGN(text, ReadFile(path));
    CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, text));
    CLI_ASSIGN(fd, fd::FunctionalDependency::FromParsed(std::move(parsed)));
    fds.push_back(std::move(fd));
  }
  std::vector<update::UpdateClass> classes;
  classes.reserve(update_paths.size());
  for (const std::string& path : update_paths) {
    CLI_ASSIGN(text, ReadFile(path));
    CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, text));
    CLI_ASSIGN(cls, update::UpdateClass::FromParsed(std::move(parsed)));
    classes.push_back(std::move(cls));
  }

  std::optional<schema::Schema> schema_storage;
  const schema::Schema* schema = nullptr;
  if (!schema_path.empty()) {
    CLI_ASSIGN(schema_text, ReadFile(schema_path));
    CLI_ASSIGN(parsed_schema, schema::Schema::Parse(alphabet, schema_text));
    schema_storage = std::move(parsed_schema);
    schema = &*schema_storage;
  }

  std::vector<const fd::FunctionalDependency*> fd_ptrs;
  for (const auto& fd : fds) fd_ptrs.push_back(&fd);
  std::vector<const update::UpdateClass*> class_ptrs;
  for (const auto& cls : classes) class_ptrs.push_back(&cls);

  independence::MatrixOptions options;
  options.jobs = jobs;
  options.cache = &exec::AutomatonCache::Global();
  options.budget = budget;
  options.profiles = profiles;
  CLI_ASSIGN(matrix,
             independence::ComputeIndependenceMatrix(fd_ptrs, class_ptrs,
                                                     schema, alphabet,
                                                     options));

  std::vector<std::string> fd_names;
  for (const std::string& path : fd_paths) fd_names.push_back(Basename(path));
  std::vector<std::string> class_names;
  for (const std::string& path : update_paths) {
    class_names.push_back(Basename(path));
  }
  std::printf("%s", matrix.ToString(fd_names, class_names).c_str());
  size_t independent = 0;
  size_t over_budget = 0;
  for (const auto& entry : matrix.entries) {
    if (entry.independent) ++independent;
    if (!entry.status.ok()) ++over_budget;
  }
  std::printf("%zu/%zu pair(s) independent\n", independent,
              matrix.entries.size());
  // Tripped pairs already count as not-independent (the conservative
  // verdict), so the exit code needs no special case for them.
  if (over_budget > 0) {
    std::printf("%zu pair(s) over budget\n", over_budget);
  }
  return independent == matrix.entries.size() ? 0 : 1;
}

int CmdDot(Alphabet* alphabet, const std::string& what,
           const std::string& pattern_path) {
  CLI_ASSIGN(pattern_text, ReadFile(pattern_path));
  CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, pattern_text));
  if (what == "pattern") {
    std::printf("%s", pattern::PatternToDot(
                          parsed.pattern, *alphabet,
                          parsed.context.value_or(pattern::kInvalidPatternNode))
                          .c_str());
    return 0;
  }
  if (what == "automaton") {
    automata::HedgeAutomaton automaton = automata::CompilePattern(
        parsed.pattern, automata::MarkMode::kTraceAndSelectedSubtrees);
    std::printf("%s", automata::AutomatonToDot(automaton, *alphabet).c_str());
    return 0;
  }
  std::fprintf(stderr, "error: %s\n",
               InvalidArgumentError("dot target must be 'pattern' or "
                                    "'automaton', got '" +
                                    what + "'")
                   .ToString()
                   .c_str());
  return 2;
}

int CmdMaterialize(Alphabet* alphabet, const std::string& view_path,
                   const std::string& xml_path) {
  CLI_ASSIGN(view_text, ReadFile(view_path));
  CLI_ASSIGN(xml_text, ReadFile(xml_path));
  CLI_ASSIGN(parsed, pattern::ParsePattern(alphabet, view_text));
  CLI_ASSIGN(v, view::View::FromParsed(std::move(parsed)));
  CLI_ASSIGN(doc, xml::ParseXml(alphabet, xml_text));
  xml::Document result = v.Materialize(doc);
  std::printf("%s", xml::WriteXml(result).c_str());
  return 0;
}

// Global observability options extracted from argv.
struct ObsOptions {
  bool stats = false;
  std::string stats_file;  // empty: stderr
  bool profile = false;
  std::string profile_file;  // empty: stderr
  bool prometheus = false;
  std::string prometheus_file;  // empty: stderr
  std::string trace_file;       // empty: tracing off
};

// Writes `content` to `path`, or to `fallback` when path is empty.
bool WriteOutput(const std::string& path, const std::string& content,
                 std::FILE* fallback) {
  if (path.empty()) {
    std::fprintf(fallback, "%s\n", content.c_str());
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << content << "\n";
  return true;
}

// Runs a single-shot command under the global budget (when one is
// configured): the whole command shares one GuardContext, and a trip maps
// to exit code 2 with the resource status on stderr — the command's own
// output is untrustworthy at that point, whatever it printed.
template <typename Fn>
int GuardedRun(const guard::ExecutionBudget& budget, Fn&& fn) {
  guard::OptionalGuardScope scope(budget, /*cancel=*/nullptr);
  int code = fn();
  Status status = guard::CurrentStatus();
  if (!status.ok()) {
    // Commands usually surface the trip through their own Status path and
    // have already printed it; report here only when one claimed success.
    if (code == 0) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    }
    return 2;
  }
  return code;
}

int Dispatch(const std::vector<std::string>& args, int jobs,
             const guard::ExecutionBudget& budget,
             std::vector<obs::QueryProfile>* profiles) {
  if (args.empty()) return Usage();
  const std::string& cmd = args[0];
  size_t argc = args.size();
  Alphabet alphabet;
  if (cmd == "explain" && argc >= 2) {
    // `explain X ...` = run `X ...` with profiling forced on, then print
    // the per-item reports. The wrapped command's own stdout still comes
    // first, so scripts can consume either.
    const std::string& sub = args[1];
    if (sub != "eval" && sub != "checkfd" && sub != "matrix") {
      return Usage("explain wraps eval, checkfd, or matrix");
    }
    std::vector<obs::QueryProfile> local;
    std::vector<obs::QueryProfile>* target =
        profiles != nullptr ? profiles : &local;
    int code = Dispatch({args.begin() + 1, args.end()}, jobs, budget, target);
    if (code != 2) {
      for (const obs::QueryProfile& p : *target) {
        std::printf("%s", p.ToText().c_str());
      }
    }
    return code;
  }
  if (cmd == "validate" && argc == 3) {
    return GuardedRun(budget,
                      [&] { return CmdValidate(&alphabet, args[1], args[2]); });
  }
  if (cmd == "checkfd" && argc >= 3) {
    // Batch commands apply the budget per work item (inside the batch
    // API), not ambiently: one runaway document degrades alone.
    return CmdCheckFd(&alphabet, args[1],
                      {args.begin() + 2, args.end()}, jobs, budget, profiles);
  }
  if (cmd == "eval" && argc >= 3) {
    return CmdEval(&alphabet, args[1], {args.begin() + 2, args.end()}, jobs,
                   budget, profiles);
  }
  if (cmd == "xpath" && argc == 3) {
    return GuardedRun(budget,
                      [&] { return CmdXPath(&alphabet, args[1], args[2]); });
  }
  if (cmd == "independent" && (argc == 3 || argc == 4)) {
    return GuardedRun(budget, [&] {
      return CmdIndependent(&alphabet, args[1], args[2],
                            argc == 4 ? args[3] : "");
    });
  }
  if (cmd == "matrix" && (argc == 3 || argc == 4)) {
    return CmdMatrix(&alphabet, args[1], args[2], argc == 4 ? args[3] : "",
                     jobs, budget, profiles);
  }
  if (cmd == "materialize" && argc == 3) {
    return GuardedRun(
        budget, [&] { return CmdMaterialize(&alphabet, args[1], args[2]); });
  }
  if (cmd == "dot" && argc == 3) {
    return GuardedRun(budget,
                      [&] { return CmdDot(&alphabet, args[1], args[2]); });
  }
  bool known = cmd == "validate" || cmd == "checkfd" || cmd == "eval" ||
               cmd == "xpath" || cmd == "independent" || cmd == "matrix" ||
               cmd == "materialize" || cmd == "dot" || cmd == "explain";
  std::string detail = known
                           ? "wrong number of arguments for '" + cmd + "'"
                           : "unknown command '" + cmd + "'";
  return Usage(detail.c_str());
}

// Parses "<prefix><positive integer>". Returns -1 on malformed input.
int64_t ParseCountFlag(std::string_view arg, const char* prefix) {
  std::string value(arg.substr(std::strlen(prefix)));
  char* end = nullptr;
  long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || parsed <= 0) return -1;
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  ObsOptions obs_options;
  int jobs = 1;
  guard::ExecutionBudget budget;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--stats") {
      obs_options.stats = true;
    } else if (arg.rfind("--stats=", 0) == 0) {
      obs_options.stats = true;
      obs_options.stats_file = arg.substr(std::strlen("--stats="));
    } else if (arg == "--profile") {
      obs_options.profile = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      obs_options.profile = true;
      obs_options.profile_file = arg.substr(std::strlen("--profile="));
    } else if (arg == "--prometheus") {
      obs_options.prometheus = true;
    } else if (arg.rfind("--prometheus=", 0) == 0) {
      obs_options.prometheus = true;
      obs_options.prometheus_file = arg.substr(std::strlen("--prometheus="));
    } else if (arg.rfind("--log-level=", 0) == 0) {
      std::string level(arg.substr(std::strlen("--log-level=")));
      if (level == "debug") {
        obs::SetLogLevel(obs::LogLevel::kDebug);
      } else if (level == "info") {
        obs::SetLogLevel(obs::LogLevel::kInfo);
      } else if (level == "warn") {
        obs::SetLogLevel(obs::LogLevel::kWarn);
      } else if (level == "error") {
        obs::SetLogLevel(obs::LogLevel::kError);
      } else if (level == "off") {
        obs::SetLogLevel(obs::LogLevel::kOff);
      } else {
        return Usage("--log-level must be debug|info|warn|error|off");
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      obs_options.trace_file = arg.substr(std::strlen("--trace-out="));
      if (obs_options.trace_file.empty()) {
        return Usage("--trace-out requires a file path");
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      std::string value(arg.substr(std::strlen("--jobs=")));
      char* end = nullptr;
      long parsed = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || parsed < 0 || parsed > 1024) {
        return Usage("--jobs requires an integer in [0, 1024]");
      }
      jobs = parsed == 0 ? exec::ThreadPool::DefaultJobs()
                         : static_cast<int>(parsed);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      budget.deadline_ms = ParseCountFlag(arg, "--deadline-ms=");
      if (budget.deadline_ms < 0) {
        return Usage("--deadline-ms requires a positive integer");
      }
    } else if (arg.rfind("--max-states=", 0) == 0) {
      budget.max_automaton_states = ParseCountFlag(arg, "--max-states=");
      if (budget.max_automaton_states < 0) {
        return Usage("--max-states requires a positive integer");
      }
    } else if (arg.rfind("--max-memory-mb=", 0) == 0) {
      int64_t mb = ParseCountFlag(arg, "--max-memory-mb=");
      if (mb < 0 || mb > (int64_t{1} << 40)) {
        return Usage("--max-memory-mb requires a positive integer");
      }
      budget.max_memory_bytes = mb << 20;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(("unknown flag '" + std::string(arg) + "'").c_str());
    } else {
      args.emplace_back(arg);
    }
  }

  obs::TraceSession trace_session;
  if (!obs_options.trace_file.empty()) trace_session.Start();

  std::vector<obs::QueryProfile> profiles;
  int exit_code = Dispatch(args, jobs, budget,
                           obs_options.profile ? &profiles : nullptr);

  if (!obs_options.trace_file.empty()) {
    trace_session.Stop();
    if (!WriteOutput(obs_options.trace_file,
                     trace_session.ExportChromeTracing(), stderr)) {
      exit_code = exit_code == 0 ? 2 : exit_code;
    }
  }
  if (obs_options.profile) {
    if (!WriteOutput(obs_options.profile_file, obs::ProfilesToJson(profiles),
                     stderr)) {
      exit_code = exit_code == 0 ? 2 : exit_code;
    }
  }
  if (obs_options.prometheus) {
    if (!WriteOutput(obs_options.prometheus_file, obs::DumpPrometheus(),
                     stderr)) {
      exit_code = exit_code == 0 ? 2 : exit_code;
    }
  }
  if (obs_options.stats) {
    if (!WriteOutput(obs_options.stats_file, obs::DumpJson(), stderr)) {
      exit_code = exit_code == 0 ? 2 : exit_code;
    }
  }
  return exit_code;
}
