// rtp_chaos_proxy — wire-level fault injection between a client and a
// live rtpd (docs/ROBUSTNESS.md "Fault model").
//
//   rtp_chaos_proxy --listen=PATH --upstream=PATH [--seed=S]
//                   [--connect-refused=BP] [--read-stall=BP]
//                   [--write-stall=BP] [--torn-write=BP]
//                   [--corrupt-byte=BP] [--premature-close=BP]
//                   [--response-delay=BP] [--stall-ms=N] [--delay-ms=N]
//
// Accepts AF_UNIX connections on --listen, connects each to the real
// daemon at --upstream, and pumps bytes both ways. Request-direction
// chunks are forwarded through the same chaos machinery the in-process
// client shim uses: each chunk draws one FaultDecision from a
// per-connection FaultPlan (seeded from --seed and the connection index,
// so a fixed seed reproduces the same wire schedule), and the decided
// fault is applied at the byte level — torn forwards, corrupted bytes,
// mid-chunk stalls, premature closes, delayed responses. Rates are basis
// points per forwarded request chunk.
//
// The proxy never touches response bytes except to delay them: rtpd's
// responses are trusted; the chaos CI leg is about proving the CLIENT
// survives a hostile wire.
//
// On SIGINT/SIGTERM the proxy prints per-kind injection counts to stderr
// ("chaos_proxy: <kind> <count>") and exits 0.
//
// Exit codes: 0 clean shutdown, 2 usage or startup errors.

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int sig) { g_signal = sig; }

std::atomic<uint64_t> g_counts[rtp::chaos::kNumFaultKinds];

int Usage(const char* detail = nullptr) {
  if (detail != nullptr) std::fprintf(stderr, "error: %s\n", detail);
  std::fprintf(
      stderr,
      "usage: rtp_chaos_proxy --listen=PATH --upstream=PATH [flags]\n"
      "flags: --seed=S             fault schedule seed (default 1)\n"
      "       --connect-refused=BP refuse the accepted connection\n"
      "       --read-stall=BP      stall before forwarding the request\n"
      "       --write-stall=BP     pause mid-request-chunk\n"
      "       --torn-write=BP      split the request chunk across writes\n"
      "       --corrupt-byte=BP    flip one request byte\n"
      "       --premature-close=BP close both sides after the request\n"
      "       --response-delay=BP  delay the matching response bytes\n"
      "       --stall-ms=N         stall length (default 20)\n"
      "       --delay-ms=N         delay length (default 5)\n"
      "rates are basis points (per 10000 request chunks), summing <= "
      "10000\n");
  return 2;
}

int ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return -1;
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, path.c_str(), path.size());
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool ForwardAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// One proxied connection: the request pump applies wire faults, the
// response pump forwards verbatim (with the delay the request pump asks
// for via delay_ms). Either side closing tears down both.
struct Session {
  int client_fd;
  int upstream_fd;
  rtp::chaos::FaultPlan plan;
  std::atomic<uint32_t> response_delay_ms{0};

  void CloseBoth() {
    ::shutdown(client_fd, SHUT_RDWR);
    ::shutdown(upstream_fd, SHUT_RDWR);
  }

  // client -> upstream, one fault decision per chunk.
  void PumpRequests() {
    char chunk[4096];
    while (true) {
      ssize_t n = ::recv(client_fd, chunk, sizeof(chunk), 0);
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      rtp::chaos::FaultDecision fault = plan.Draw();
      if (!fault.none()) {
        g_counts[static_cast<size_t>(fault.kind)].fetch_add(
            1, std::memory_order_relaxed);
      }
      using rtp::chaos::FaultKind;
      switch (fault.kind) {
        case FaultKind::kConnectRefused:
        case FaultKind::kPrematureClose:
          // At the wire there is no connect to refuse anymore; both kinds
          // degrade to severing the session under the client.
          CloseBoth();
          return;
        case FaultKind::kReadStall:
          rtp::chaos::SleepMs(fault.stall_ms);
          break;
        case FaultKind::kResponseDelay:
          response_delay_ms.store(fault.delay_ms, std::memory_order_relaxed);
          break;
        default:
          break;
      }
      std::string line(chunk, static_cast<size_t>(n));
      // ShimSendLine frames with '\n'; the chunk already carries its own
      // framing, so hand it the chunk minus the byte the shim re-adds.
      bool sent;
      if ((fault.kind == FaultKind::kTornWrite ||
           fault.kind == FaultKind::kWriteStall ||
           fault.kind == FaultKind::kCorruptByte) &&
          !line.empty() && line.back() == '\n') {
        line.pop_back();
        sent = rtp::chaos::ShimSendLine(upstream_fd, line, fault).ok();
      } else {
        sent = ForwardAll(upstream_fd, chunk, static_cast<size_t>(n));
      }
      if (!sent) break;
    }
    CloseBoth();
  }

  // upstream -> client, verbatim except for the decided delay.
  void PumpResponses() {
    char chunk[4096];
    while (true) {
      ssize_t n = ::recv(upstream_fd, chunk, sizeof(chunk), 0);
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      uint32_t delay =
          response_delay_ms.exchange(0, std::memory_order_relaxed);
      if (delay > 0) rtp::chaos::SleepMs(delay);
      if (!ForwardAll(client_fd, chunk, static_cast<size_t>(n))) break;
    }
    CloseBoth();
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string listen_path;
  std::string upstream_path;
  rtp::chaos::ChaosConfig config;
  config.seed = 1;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto parse_count = [arg](const char* prefix) -> long long {
      const char* value = arg + std::strlen(prefix);
      char* end = nullptr;
      long long parsed = std::strtoll(value, &end, 10);
      if (*value == '\0' || *end != '\0' || parsed < 0) return -1;
      return parsed;
    };
    struct RateFlag {
      const char* prefix;
      uint32_t* slot;
    };
    const RateFlag rate_flags[] = {
        {"--connect-refused=", &config.connect_refused},
        {"--read-stall=", &config.read_stall},
        {"--write-stall=", &config.write_stall},
        {"--torn-write=", &config.torn_write},
        {"--corrupt-byte=", &config.corrupt_byte},
        {"--premature-close=", &config.premature_close},
        {"--response-delay=", &config.response_delay},
        {"--stall-ms=", &config.stall_ms},
        {"--delay-ms=", &config.delay_ms},
    };
    bool matched = false;
    for (const RateFlag& flag : rate_flags) {
      if (std::strncmp(arg, flag.prefix, std::strlen(flag.prefix)) == 0) {
        long long parsed = parse_count(flag.prefix);
        if (parsed < 0 || parsed > 10000) {
          return Usage("rate flags require an integer in [0, 10000]");
        }
        *flag.slot = static_cast<uint32_t>(parsed);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (std::strncmp(arg, "--listen=", 9) == 0) {
      listen_path = arg + 9;
    } else if (std::strncmp(arg, "--upstream=", 11) == 0) {
      upstream_path = arg + 11;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      long long seed = parse_count("--seed=");
      if (seed < 0) return Usage("--seed requires a nonnegative integer");
      config.seed = static_cast<uint64_t>(seed);
    } else {
      return Usage(("unknown flag '" + std::string(arg) + "'").c_str());
    }
  }
  if (listen_path.empty()) return Usage("--listen is required");
  if (upstream_path.empty()) return Usage("--upstream is required");
  if (!config.Validate().ok()) {
    return Usage("fault rates must sum to at most 10000");
  }

  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  if (listen_path.size() >= sizeof(addr.sun_path)) {
    return Usage("--listen path exceeds the AF_UNIX limit");
  }
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "error: socket(): %s\n", strerror(errno));
    return 2;
  }
  ::unlink(listen_path.c_str());
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, listen_path.c_str(), listen_path.size());
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    std::fprintf(stderr, "error: bind/listen('%s'): %s\n",
                 listen_path.c_str(), strerror(errno));
    ::close(listen_fd);
    return 2;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::fprintf(stderr, "rtp_chaos_proxy: %s -> %s (seed %llu)\n",
               listen_path.c_str(), upstream_path.c_str(),
               static_cast<unsigned long long>(config.seed));

  std::mutex mu;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<std::thread> pumps;
  uint64_t next_stream = 0;

  while (g_signal == 0) {
    struct pollfd p;
    p.fd = listen_fd;
    p.events = POLLIN;
    p.revents = 0;
    int ready = ::poll(&p, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) continue;
    int upstream_fd = ConnectUnix(upstream_path);
    if (upstream_fd < 0) {
      // Upstream gone: the refused connect is itself the fault the
      // client must absorb.
      ::close(client_fd);
      continue;
    }
    auto session = std::make_unique<Session>();
    session->client_fd = client_fd;
    session->upstream_fd = upstream_fd;
    session->plan = rtp::chaos::FaultPlan(config, next_stream++);
    Session* raw = session.get();
    std::lock_guard<std::mutex> lock(mu);
    sessions.push_back(std::move(session));
    pumps.emplace_back([raw] { raw->PumpRequests(); });
    pumps.emplace_back([raw] { raw->PumpResponses(); });
  }

  ::close(listen_fd);
  ::unlink(listen_path.c_str());
  {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& session : sessions) session->CloseBoth();
  }
  for (std::thread& t : pumps) t.join();
  {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& session : sessions) {
      ::close(session->client_fd);
      ::close(session->upstream_fd);
    }
  }
  for (int kind = 1; kind < rtp::chaos::kNumFaultKinds; ++kind) {
    uint64_t count =
        g_counts[static_cast<size_t>(kind)].load(std::memory_order_relaxed);
    if (count == 0) continue;
    std::fprintf(
        stderr, "chaos_proxy: %s %llu\n",
        rtp::chaos::FaultKindName(static_cast<rtp::chaos::FaultKind>(kind)),
        static_cast<unsigned long long>(count));
  }
  return 0;
}
