// rtpd — resident multi-tenant query daemon (docs/SERVING.md).
//
//   rtpd --socket=PATH [--jobs=N] [--queue-capacity=N]
//        [--max-line-bytes=N] [--idle-timeout-ms=N] [--drain-grace-ms=N]
//        [--max-retry-after-ms=N] [--deadline-ms=N] [--max-states=N]
//        [--max-steps=N] [--max-memory-mb=N] [--log-level=LEVEL]
//
// Serves the line-delimited JSON protocol of src/serve/protocol.h on a
// local AF_UNIX socket until it receives a shutdown request, SIGINT, or
// SIGTERM. The budget flags set the server-wide default applied to
// requests that carry no budget and whose tenant has no quota.
//
// SIGTERM drains gracefully (docs/ROBUSTNESS.md): the socket path is
// removed immediately so new connects fail, in-flight requests finish,
// and only after --drain-grace-ms are stragglers severed. SIGINT and the
// shutdown op stop immediately (in-flight work still completes; the
// guard cancel tokens fire for abandoned requests).
//
// Exit codes: 0 clean shutdown, 2 usage or startup error.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/thread_pool.h"
#include "obs/log.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

int Usage(const char* detail = nullptr) {
  if (detail != nullptr) std::fprintf(stderr, "error: %s\n", detail);
  std::fprintf(stderr,
               "usage: rtpd --socket=PATH [flags]\n"
               "flags: --jobs=N            request worker threads "
               "(default 2, 0 = hardware)\n"
               "       --queue-capacity=N  admitted-but-unstarted request "
               "bound (default 1024)\n"
               "       --max-line-bytes=N  request line size cap "
               "(default 1048576)\n"
               "       --idle-timeout-ms=N reap connections silent this "
               "long (default 30000, 0 = never)\n"
               "       --drain-grace-ms=N  SIGTERM drain window before "
               "severing stragglers (default 5000)\n"
               "       --max-retry-after-ms=N cap on the retry_after_ms "
               "hint in shed responses (default 1000)\n"
               "       --deadline-ms=N     default wall-clock budget per "
               "request\n"
               "       --max-states=N      default automaton-state quota\n"
               "       --max-steps=N       default step quota\n"
               "       --max-memory-mb=N   default approximate memory "
               "budget\n"
               "       --log-level=LEVEL   debug|info|warn|error|off\n");
  return 2;
}

int64_t ParseCountFlag(const char* arg, const char* prefix) {
  const char* value = arg + std::strlen(prefix);
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (*value == '\0' || *end != '\0' || parsed < 0) return -1;
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  rtp::serve::ServerOptions options;
  options.idle_timeout_ms = 30000;
  int drain_grace_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      options.socket_path = arg + 9;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      int64_t jobs = ParseCountFlag(arg, "--jobs=");
      if (jobs < 0 || jobs > 1024) {
        return Usage("--jobs requires an integer in [0, 1024]");
      }
      options.jobs = jobs == 0 ? rtp::exec::ThreadPool::DefaultJobs()
                               : static_cast<int>(jobs);
    } else if (std::strncmp(arg, "--queue-capacity=", 17) == 0) {
      int64_t cap = ParseCountFlag(arg, "--queue-capacity=");
      if (cap <= 0) return Usage("--queue-capacity requires a positive integer");
      options.queue_capacity = static_cast<size_t>(cap);
    } else if (std::strncmp(arg, "--max-line-bytes=", 17) == 0) {
      int64_t bytes = ParseCountFlag(arg, "--max-line-bytes=");
      if (bytes <= 0) {
        return Usage("--max-line-bytes requires a positive integer");
      }
      options.max_line_bytes = static_cast<size_t>(bytes);
    } else if (std::strncmp(arg, "--idle-timeout-ms=", 18) == 0) {
      int64_t ms = ParseCountFlag(arg, "--idle-timeout-ms=");
      if (ms < 0 || ms > (int64_t{1} << 31)) {
        return Usage("--idle-timeout-ms requires a nonnegative integer");
      }
      options.idle_timeout_ms = static_cast<int>(ms);
    } else if (std::strncmp(arg, "--drain-grace-ms=", 17) == 0) {
      int64_t ms = ParseCountFlag(arg, "--drain-grace-ms=");
      if (ms < 0 || ms > (int64_t{1} << 31)) {
        return Usage("--drain-grace-ms requires a nonnegative integer");
      }
      drain_grace_ms = static_cast<int>(ms);
    } else if (std::strncmp(arg, "--max-retry-after-ms=", 21) == 0) {
      int64_t ms = ParseCountFlag(arg, "--max-retry-after-ms=");
      if (ms < 0 || ms > (int64_t{1} << 31)) {
        return Usage("--max-retry-after-ms requires a nonnegative integer");
      }
      options.max_retry_after_ms = static_cast<int>(ms);
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      options.default_budget.deadline_ms = ParseCountFlag(arg, "--deadline-ms=");
      if (options.default_budget.deadline_ms < 0) {
        return Usage("--deadline-ms requires a nonnegative integer");
      }
    } else if (std::strncmp(arg, "--max-states=", 13) == 0) {
      options.default_budget.max_automaton_states =
          ParseCountFlag(arg, "--max-states=");
      if (options.default_budget.max_automaton_states < 0) {
        return Usage("--max-states requires a nonnegative integer");
      }
    } else if (std::strncmp(arg, "--max-steps=", 12) == 0) {
      options.default_budget.max_steps = ParseCountFlag(arg, "--max-steps=");
      if (options.default_budget.max_steps < 0) {
        return Usage("--max-steps requires a nonnegative integer");
      }
    } else if (std::strncmp(arg, "--max-memory-mb=", 16) == 0) {
      int64_t mb = ParseCountFlag(arg, "--max-memory-mb=");
      if (mb < 0 || mb > (int64_t{1} << 40)) {
        return Usage("--max-memory-mb requires a nonnegative integer");
      }
      options.default_budget.max_memory_bytes = mb << 20;
    } else if (std::strncmp(arg, "--log-level=", 12) == 0) {
      std::string level = arg + 12;
      if (level == "debug") rtp::obs::SetLogLevel(rtp::obs::LogLevel::kDebug);
      else if (level == "info") rtp::obs::SetLogLevel(rtp::obs::LogLevel::kInfo);
      else if (level == "warn") rtp::obs::SetLogLevel(rtp::obs::LogLevel::kWarn);
      else if (level == "error") {
        rtp::obs::SetLogLevel(rtp::obs::LogLevel::kError);
      } else if (level == "off") {
        rtp::obs::SetLogLevel(rtp::obs::LogLevel::kOff);
      } else {
        return Usage("--log-level must be debug|info|warn|error|off");
      }
    } else {
      return Usage(("unknown flag '" + std::string(arg) + "'").c_str());
    }
  }
  if (options.socket_path.empty()) return Usage("--socket is required");

  auto server_or = rtp::serve::Server::Start(options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 server_or.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<rtp::serve::Server> server = std::move(server_or).value();
  std::fprintf(stderr, "rtpd: serving on %s\n", options.socket_path.c_str());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  // Poll in short slices: signal handlers cannot touch the server's
  // condition variable, so the main thread checks the flag between waits.
  while (!server->WaitFor(200)) {
    if (g_signal != 0) break;
  }
  if (g_signal == SIGTERM) {
    std::fprintf(stderr, "rtpd: draining (grace %dms)\n", drain_grace_ms);
    server->Drain(drain_grace_ms);
  } else {
    server->Stop();
  }
  std::fprintf(stderr, "rtpd: stopped\n");
  return 0;
}
