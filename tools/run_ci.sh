#!/usr/bin/env bash
# Local CI driver: builds and tests the repo in three configurations,
# then runs a perf smoke.
#
#   1. plain          Release, no sanitizer         — full ctest suite
#   2. asan-ubsan     -DRTP_SANITIZE=address,undefined — full ctest suite
#   3. tsan           -DRTP_SANITIZE=thread         — `ctest -L exec` only:
#      the exec label marks the concurrency suite (rtp::exec engine,
#      parallel differential battery, obs counters). TSan slows everything
#      ~10x and the rest of the suite is single-threaded, so the label
#      keeps the leg focused on code that actually runs concurrently.
#   4. perf           one pass over the allowlisted benchmarks in the
#      plain (Release) tree, compared against the committed BENCH_pr3.json
#      via tools/bench_compare.py (>10% cpu-time regression fails; see
#      docs/PERFORMANCE.md).
#
# usage: tools/run_ci.sh [build-dir-prefix]
#        tools/run_ci.sh perf [build-dir-prefix]   # perf smoke only
#
#   build-dir-prefix  defaults to ./build-ci; the build trees are
#                     <prefix>-plain, <prefix>-asan-ubsan, <prefix>-tsan.
#
# Exits non-zero on the first failing configuration.
set -euo pipefail

only_perf=0
if [ "${1:-}" = "perf" ]; then
  only_perf=1
  shift
fi
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 2)"
source_dir="$(cd "$(dirname "$0")/.." && pwd)"

run_leg() {
  local name="$1" sanitize="$2" ctest_args="$3"
  local build_dir="${prefix}-${name}"
  echo "==== [$name] configure (RTP_SANITIZE='${sanitize}')" >&2
  cmake -B "$build_dir" -S "$source_dir" -DRTP_SANITIZE="$sanitize" \
    > /dev/null
  echo "==== [$name] build" >&2
  cmake --build "$build_dir" -j "$jobs"
  echo "==== [$name] ctest $ctest_args" >&2
  # shellcheck disable=SC2086  # ctest_args is a deliberate word list
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs" $ctest_args)
}

run_perf() {
  local build_dir="${prefix}-plain"
  echo "==== [perf] configure + build (Release)" >&2
  cmake -B "$build_dir" -S "$source_dir" -DRTP_SANITIZE="" > /dev/null
  cmake --build "$build_dir" -j "$jobs" --target bench_pattern_eval \
    bench_fd_check
  local out
  out="$(mktemp)"
  # shellcheck disable=SC2064  # expand $out now, not at trap time
  trap "rm -f '$out'" RETURN
  echo "==== [perf] running allowlisted benchmarks" >&2
  RTP_BENCH_JSON="$out" "$build_dir/bench/bench_pattern_eval" \
    --benchmark_filter='(BM_MatchTablesR1|BM_MatchTablesR3|BM_EnumerateR2|BM_EnumerateR3)/4096$' \
    --benchmark_min_time=0.1 >&2
  RTP_BENCH_JSON="$out" "$build_dir/bench/bench_fd_check" \
    --benchmark_filter='(BM_CheckFd1|BM_CheckFd2|BM_CheckFd3|BM_CheckFd5)/4096$' \
    --benchmark_min_time=0.1 >&2
  echo "==== [perf] comparing against BENCH_pr3.json" >&2
  python3 "$source_dir/tools/bench_compare.py" \
    "$source_dir/BENCH_pr3.json" "$out"
}

if [ "$only_perf" = 1 ]; then
  run_perf
  echo "==== perf leg passed" >&2
  exit 0
fi

run_leg plain      ""                  ""
run_leg asan-ubsan "address,undefined" ""
run_leg tsan       "thread"            "-L exec"
run_perf

echo "==== all CI legs passed" >&2
