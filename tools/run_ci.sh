#!/usr/bin/env bash
# Local CI driver. Runs one leg or all of them; .github/workflows/ci.yml
# runs the same legs, one matrix job each, so local and hosted CI cannot
# drift.
#
#   plain         Release, no sanitizer           — full ctest suite
#   asan-ubsan    -DRTP_SANITIZE=address,undefined — full ctest suite
#                 (includes the fuzz-corpus replay test, so every corpus
#                 entry runs under ASan/UBSan here)
#   tsan          -DRTP_SANITIZE=thread           — `ctest -L 'exec|serve'`:
#                 the exec label marks the concurrency suite (rtp::exec
#                 engine, parallel differential battery, oracle battery)
#                 and the serve label marks the rtpd end-to-end battery.
#                 TSan slows everything ~10x and the rest of the suite is
#                 single-threaded, so the labels keep the leg focused on
#                 code that actually runs concurrently.
#   perf          one pass over the allowlisted benchmarks in the plain
#                 (Release) tree, compared against the committed
#                 BENCH_pr10.json via tools/bench_compare.py (>10% cpu-time
#                 regression fails; see docs/PERFORMANCE.md).
#   fuzz          -DRTP_FUZZ=ON -DRTP_SANITIZE=address,undefined build of
#                 the fuzz/ harnesses; replays fuzz/corpus/, then fuzzes
#                 each harness for RTP_FUZZ_SECONDS (default 30) seconds.
#                 Non-zero on any crash / oracle violation. See
#                 docs/FUZZING.md.
#   failpoints    -DRTP_FAILPOINTS=ON -DRTP_SANITIZE=address,undefined —
#                 the guard + status suites with fault injection compiled
#                 in (the failpoint tests GTEST_SKIP themselves everywhere
#                 else). See docs/ROBUSTNESS.md.
#   obs-off       -DRTP_OBS_DISABLED=ON — full ctest suite with every
#                 rtp::obs macro compiled to a no-op, so the disabled
#                 path (and the tests' SKIP guards) cannot rot. See
#                 docs/OBSERVABILITY.md.
#   serve         builds rtpd + rtpd_client + the serve battery in the
#                 plain and tsan trees, runs `ctest -L serve` in both,
#                 then smoke-tests a real daemon: starts rtpd on a temp
#                 socket, loads examples/data/exam.xml, and diffs an
#                 rtpd_client eval round-trip against the serial
#                 `rtp_cli eval` output (the bit-identity contract of
#                 docs/SERVING.md).
#   load          builds rtpd + rtpd_client + rtp_load in the plain tree,
#                 starts a real daemon, and runs the committed
#                 examples/workloads/smoke.json twice with the same seed
#                 (4 client threads). rtp_load exits non-zero on any
#                 error-status response or zero completed ops, and the leg
#                 diffs the two --counts-out files: same-seed runs must
#                 produce byte-identical per-node op counts (the
#                 reproducibility contract of docs/WORKLOADS.md).
#   chaos         the fault-injection leg (docs/ROBUSTNESS.md). Three
#                 phases: (1) a real daemon under the committed
#                 examples/workloads/chaos.json — client-side seeded fault
#                 injection — twice with one seed, diffing the two
#                 --counts-out files (which include the per-node
#                 fault.<kind> injection counts); (2) the smoke spec driven
#                 through rtp_chaos_proxy with wire-level faults against
#                 the same daemon, asserting the run completes and the
#                 daemon still answers afterwards; (3) `ctest -R
#                 'Chaos|Framer|Overload|Degradation'` in the tsan tree.
#                 Every phase requires: zero hangs, zero daemon exits,
#                 every fault retried or surfaced as a structured error.
#   format        clang-format --dry-run --Werror over src/ tests/ tools/
#                 fuzz/ (skipped with a notice when clang-format is not
#                 installed).
#
# usage: tools/run_ci.sh [leg] [build-dir-prefix]
#
#   leg               all (default) | plain | asan-ubsan | tsan | perf |
#                     fuzz | failpoints | obs-off | serve | load | chaos |
#                     format
#   build-dir-prefix  defaults to ./build-ci; the build trees are
#                     <prefix>-plain, <prefix>-asan-ubsan, <prefix>-tsan,
#                     <prefix>-fuzz, <prefix>-failpoints, <prefix>-obs-off.
#
# Exits non-zero on the first failing leg.
set -euo pipefail

leg="all"
case "${1:-}" in
  all|plain|asan-ubsan|tsan|perf|fuzz|failpoints|obs-off|serve|load|chaos|format)
    leg="$1"
    shift
    ;;
esac
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 2)"
source_dir="$(cd "$(dirname "$0")/.." && pwd)"

run_leg() {
  local name="$1" sanitize="$2" ctest_args="$3" extra_cmake="${4:-}"
  local build_dir="${prefix}-${name}"
  echo "==== [$name] configure (RTP_SANITIZE='${sanitize}'" \
    "${extra_cmake:+extra: $extra_cmake})" >&2
  # shellcheck disable=SC2086  # extra_cmake is a deliberate word list
  cmake -B "$build_dir" -S "$source_dir" -DRTP_SANITIZE="$sanitize" \
    $extra_cmake > /dev/null
  echo "==== [$name] build" >&2
  cmake --build "$build_dir" -j "$jobs"
  echo "==== [$name] ctest $ctest_args" >&2
  # shellcheck disable=SC2086  # ctest_args is a deliberate word list
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs" $ctest_args)
}

run_perf() {
  local build_dir="${prefix}-plain"
  echo "==== [perf] configure + build (Release)" >&2
  cmake -B "$build_dir" -S "$source_dir" -DRTP_SANITIZE="" > /dev/null
  cmake --build "$build_dir" -j "$jobs" --target bench_pattern_eval \
    bench_fd_check
  local out
  out="$(mktemp)"
  # shellcheck disable=SC2064  # expand $out now, not at trap time
  trap "rm -f '$out'" RETURN
  echo "==== [perf] running allowlisted benchmarks" >&2
  RTP_BENCH_JSON="$out" "$build_dir/bench/bench_pattern_eval" \
    --benchmark_filter='(BM_MatchTablesR1|BM_MatchTablesR3|BM_EnumerateR2|BM_EnumerateR3)/4096$' \
    --benchmark_min_time=0.1 >&2
  RTP_BENCH_JSON="$out" "$build_dir/bench/bench_fd_check" \
    --benchmark_filter='(BM_CheckFd1|BM_CheckFd2|BM_CheckFd3|BM_CheckFd5)/4096$' \
    --benchmark_min_time=0.1 >&2
  echo "==== [perf] comparing against BENCH_pr10.json" >&2
  python3 "$source_dir/tools/bench_compare.py" \
    "$source_dir/BENCH_pr10.json" "$out"
}

run_fuzz() {
  local build_dir="${prefix}-fuzz"
  local seconds="${RTP_FUZZ_SECONDS:-30}"
  echo "==== [fuzz] configure (RTP_FUZZ=ON, ASan+UBSan)" >&2
  cmake -B "$build_dir" -S "$source_dir" -DRTP_FUZZ=ON \
    -DRTP_SANITIZE="address,undefined" > /dev/null
  echo "==== [fuzz] build harnesses" >&2
  cmake --build "$build_dir" -j "$jobs" --target \
    fuzz_regex fuzz_pattern fuzz_schema fuzz_xml fuzz_differential fuzz_serve
  local scratch
  scratch="$(mktemp -d)"
  # shellcheck disable=SC2064  # expand $scratch now, not at trap time
  trap "rm -rf '$scratch'" RETURN
  local name
  for name in regex pattern schema xml differential serve; do
    echo "==== [fuzz] $name: replay fuzz/corpus/$name" >&2
    "$build_dir/fuzz/fuzz_$name" -runs=0 "$source_dir/fuzz/corpus/$name"
    echo "==== [fuzz] $name: ${seconds}s smoke" >&2
    # The writable corpus dir comes first so new units land in the
    # scratch dir, never in the repo; the committed corpus only seeds.
    mkdir -p "$scratch/$name"
    "$build_dir/fuzz/fuzz_$name" -max_total_time="$seconds" \
      "$scratch/$name" "$source_dir/fuzz/corpus/$name"
  done
}

run_failpoints() {
  local build_dir="${prefix}-failpoints"
  echo "==== [failpoints] configure (RTP_FAILPOINTS=ON, ASan+UBSan)" >&2
  cmake -B "$build_dir" -S "$source_dir" -DRTP_FAILPOINTS=ON \
    -DRTP_SANITIZE="address,undefined" > /dev/null
  echo "==== [failpoints] build" >&2
  cmake --build "$build_dir" -j "$jobs" --target rtp_tests
  echo "==== [failpoints] ctest -R '(Guard|Status)'" >&2
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs" \
    -R '(Guard|Status)')
}

run_serve_smoke() {
  local build_dir="$1"
  local sock workdir
  workdir="$(mktemp -d)"
  sock="$workdir/rtpd.sock"
  echo "==== [serve] smoke: rtpd round-trip on $sock" >&2
  "$build_dir/tools/rtpd" --socket="$sock" --jobs=2 &
  local rtpd_pid=$!
  # shellcheck disable=SC2064  # expand now: kill the daemon we started
  trap "kill $rtpd_pid 2>/dev/null; wait $rtpd_pid 2>/dev/null; rm -rf '$workdir'" RETURN
  local i
  for i in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || { echo "rtpd did not come up" >&2; return 1; }
  "$build_dir/tools/rtpd_client" --socket="$sock" load smoke exam \
    "$source_dir/examples/data/exam.xml"
  "$build_dir/tools/rtpd_client" --socket="$sock" eval smoke exam \
    "$source_dir/examples/data/update_u.pattern" > "$workdir/served.txt"
  "$build_dir/tools/rtp_cli" eval \
    "$source_dir/examples/data/update_u.pattern" \
    "$source_dir/examples/data/exam.xml" > "$workdir/serial.txt"
  diff -u "$workdir/serial.txt" "$workdir/served.txt"
  "$build_dir/tools/rtpd_client" --socket="$sock" shutdown
  wait "$rtpd_pid"
  echo "==== [serve] smoke: resident output identical to serial rtp_cli" >&2
}

run_serve() {
  local build_dir="${prefix}-plain"
  echo "==== [serve] configure + build (plain)" >&2
  cmake -B "$build_dir" -S "$source_dir" -DRTP_SANITIZE="" > /dev/null
  cmake --build "$build_dir" -j "$jobs" --target \
    rtpd rtpd_client rtp_cli rtp_serve_tests
  echo "==== [serve] ctest -L serve (plain)" >&2
  (cd "$build_dir" &&
    ctest --output-on-failure --no-tests=error -j "$jobs" -L serve)
  run_serve_smoke "$build_dir"
  local tsan_dir="${prefix}-tsan"
  echo "==== [serve] configure + build (tsan)" >&2
  cmake -B "$tsan_dir" -S "$source_dir" -DRTP_SANITIZE="thread" > /dev/null
  cmake --build "$tsan_dir" -j "$jobs" --target rtp_serve_tests
  echo "==== [serve] ctest -L serve (tsan)" >&2
  (cd "$tsan_dir" &&
    ctest --output-on-failure --no-tests=error -j "$jobs" -L serve)
}

# The load leg: a real daemon under the committed smoke workload spec,
# run twice with one seed. Reproducibility is enforced by diffing the
# per-node op counts; rtp_load itself exits non-zero on any error-status
# response or a zero-op run.
run_load() {
  local build_dir="${prefix}-plain"
  echo "==== [load] configure + build (plain)" >&2
  cmake -B "$build_dir" -S "$source_dir" -DRTP_SANITIZE="" > /dev/null
  cmake --build "$build_dir" -j "$jobs" --target rtpd rtpd_client rtp_load
  local workdir sock
  workdir="$(mktemp -d)"
  sock="$workdir/rtpd.sock"
  echo "==== [load] starting rtpd on $sock" >&2
  "$build_dir/tools/rtpd" --socket="$sock" --jobs=4 &
  local rtpd_pid=$!
  # shellcheck disable=SC2064  # expand now: kill the daemon we started
  trap "kill $rtpd_pid 2>/dev/null; wait $rtpd_pid 2>/dev/null; rm -rf '$workdir'" RETURN
  local i
  for i in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || { echo "rtpd did not come up" >&2; return 1; }
  local run
  for run in 1 2; do
    echo "==== [load] smoke workload run $run (4 threads, seed 42)" >&2
    "$build_dir/tools/rtp_load" \
      --spec="$source_dir/examples/workloads/smoke.json" \
      --socket="$sock" --threads=4 --seed=42 \
      --counts-out="$workdir/counts$run.txt"
  done
  echo "==== [load] diffing per-node op counts across the two runs" >&2
  diff -u "$workdir/counts1.txt" "$workdir/counts2.txt"
  "$build_dir/tools/rtpd_client" --socket="$sock" shutdown
  wait "$rtpd_pid"
  echo "==== [load] same-seed runs produced identical per-node counts" >&2
}

# The chaos leg: a real daemon must survive seeded fault schedules from
# both injection paths — in-process (the workload spec's chaos block) and
# wire-level (rtp_chaos_proxy) — with every fault either transparently
# retried or surfaced as a structured error, and identical per-node
# fault-injection counts across same-seed runs.
run_chaos() {
  local build_dir="${prefix}-plain"
  echo "==== [chaos] configure + build (plain)" >&2
  cmake -B "$build_dir" -S "$source_dir" -DRTP_SANITIZE="" > /dev/null
  cmake --build "$build_dir" -j "$jobs" --target \
    rtpd rtpd_client rtp_load rtp_chaos_proxy
  local workdir sock front
  workdir="$(mktemp -d)"
  sock="$workdir/rtpd.sock"
  front="$workdir/chaos.sock"
  echo "==== [chaos] starting rtpd on $sock" >&2
  "$build_dir/tools/rtpd" --socket="$sock" --jobs=4 \
    --idle-timeout-ms=30000 &
  local rtpd_pid=$!
  # shellcheck disable=SC2064  # expand now: kill what we started
  trap "kill $rtpd_pid 2>/dev/null; wait $rtpd_pid 2>/dev/null; rm -rf '$workdir'" RETURN
  local i
  for i in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || { echo "rtpd did not come up" >&2; return 1; }

  local run
  for run in 1 2; do
    echo "==== [chaos] in-process injection run $run (chaos.json, seed 42)" >&2
    "$build_dir/tools/rtp_load" \
      --spec="$source_dir/examples/workloads/chaos.json" \
      --socket="$sock" --threads=4 --seed=42 --allow-errors \
      --counts-out="$workdir/counts$run.txt"
  done
  echo "==== [chaos] diffing per-node op + fault counts across runs" >&2
  diff -u "$workdir/counts1.txt" "$workdir/counts2.txt"
  grep -q '\.fault\.' "$workdir/counts1.txt" || {
    echo "chaos.json run injected no faults" >&2; return 1; }

  echo "==== [chaos] wire-level injection through rtp_chaos_proxy" >&2
  "$build_dir/tools/rtp_chaos_proxy" --listen="$front" --upstream="$sock" \
    --seed=7 --read-stall=200 --torn-write=300 --corrupt-byte=150 \
    --premature-close=150 --response-delay=200 --stall-ms=5 --delay-ms=5 &
  local proxy_pid=$!
  for i in $(seq 1 50); do
    [ -S "$front" ] && break
    sleep 0.1
  done
  [ -S "$front" ] || { echo "proxy did not come up" >&2; return 1; }
  "$build_dir/tools/rtp_load" \
    --spec="$source_dir/examples/workloads/smoke.json" \
    --socket="$front" --threads=4 --seed=42 --allow-errors --quiet
  kill "$proxy_pid" 2>/dev/null
  wait "$proxy_pid"

  echo "==== [chaos] daemon still answers after both schedules" >&2
  "$build_dir/tools/rtpd_client" --socket="$sock" load chaosci exam \
    "$source_dir/examples/data/exam.xml"
  "$build_dir/tools/rtpd_client" --socket="$sock" shutdown
  wait "$rtpd_pid"

  local tsan_dir="${prefix}-tsan"
  echo "==== [chaos] configure + build (tsan)" >&2
  cmake -B "$tsan_dir" -S "$source_dir" -DRTP_SANITIZE="thread" > /dev/null
  cmake --build "$tsan_dir" -j "$jobs" --target rtp_serve_tests
  echo "==== [chaos] ctest -R 'Chaos|Framer|Overload|Degradation' (tsan)" >&2
  (cd "$tsan_dir" && ctest --output-on-failure --no-tests=error -j "$jobs" \
    -R 'Chaos|Framer|Overload|Degradation')
}

run_format() {
  if ! command -v clang-format > /dev/null 2>&1; then
    echo "==== [format] clang-format not installed — skipping" >&2
    return 0
  fi
  echo "==== [format] clang-format --dry-run --Werror" >&2
  (cd "$source_dir" &&
    find src tests tools fuzz \( -name '*.cc' -o -name '*.h' \) -print0 |
    xargs -0 clang-format --dry-run --Werror)
}

case "$leg" in
  plain)      run_leg plain      ""                  "" ;;
  asan-ubsan) run_leg asan-ubsan "address,undefined" "" ;;
  tsan)       run_leg tsan       "thread"            "-L 'exec|serve'" ;;
  obs-off)    run_leg obs-off    ""                  "" "-DRTP_OBS_DISABLED=ON" ;;
  perf)       run_perf ;;
  fuzz)       run_fuzz ;;
  failpoints) run_failpoints ;;
  serve)      run_serve ;;
  load)       run_load ;;
  chaos)      run_chaos ;;
  format)     run_format ;;
  all)
    run_format
    run_leg plain      ""                  ""
    run_leg asan-ubsan "address,undefined" ""
    run_leg tsan       "thread"            "-L 'exec|serve'"
    run_leg obs-off    ""                  "" "-DRTP_OBS_DISABLED=ON"
    run_serve
    run_load
    run_chaos
    run_perf
    run_fuzz
    run_failpoints
    ;;
esac

echo "==== CI leg(s) '$leg' passed" >&2
