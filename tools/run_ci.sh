#!/usr/bin/env bash
# Local CI driver: builds and tests the repo in three configurations.
#
#   1. plain          Release, no sanitizer         — full ctest suite
#   2. asan-ubsan     -DRTP_SANITIZE=address,undefined — full ctest suite
#   3. tsan           -DRTP_SANITIZE=thread         — `ctest -L exec` only:
#      the exec label marks the concurrency suite (rtp::exec engine,
#      parallel differential battery, obs counters). TSan slows everything
#      ~10x and the rest of the suite is single-threaded, so the label
#      keeps the leg focused on code that actually runs concurrently.
#
# usage: tools/run_ci.sh [build-dir-prefix]
#
#   build-dir-prefix  defaults to ./build-ci; the three trees are
#                     <prefix>-plain, <prefix>-asan-ubsan, <prefix>-tsan.
#
# Exits non-zero on the first failing configuration.
set -euo pipefail

prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 2)"
source_dir="$(cd "$(dirname "$0")/.." && pwd)"

run_leg() {
  local name="$1" sanitize="$2" ctest_args="$3"
  local build_dir="${prefix}-${name}"
  echo "==== [$name] configure (RTP_SANITIZE='${sanitize}')" >&2
  cmake -B "$build_dir" -S "$source_dir" -DRTP_SANITIZE="$sanitize" \
    > /dev/null
  echo "==== [$name] build" >&2
  cmake --build "$build_dir" -j "$jobs"
  echo "==== [$name] ctest $ctest_args" >&2
  # shellcheck disable=SC2086  # ctest_args is a deliberate word list
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs" $ctest_args)
}

run_leg plain      ""                  ""
run_leg asan-ubsan "address,undefined" ""
run_leg tsan       "thread"            "-L exec"

echo "==== all CI legs passed" >&2
