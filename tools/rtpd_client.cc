// rtpd_client — command-line driver for a running rtpd (docs/SERVING.md).
//
//   rtpd_client --socket=PATH load    <tenant> <doc-name> <xml-file>
//   rtpd_client --socket=PATH eval    <tenant> <doc-name> <pattern-file>
//   rtpd_client --socket=PATH checkfd <tenant> <doc-name> <fd-file>
//   rtpd_client --socket=PATH matrix  <tenant> <fd-file>[,...]
//                                     <class-file>[,...] [schema-file]
//   rtpd_client --socket=PATH stats
//   rtpd_client --socket=PATH drop    <tenant> <doc-name>
//   rtpd_client --socket=PATH quota   <tenant>
//   rtpd_client --socket=PATH shutdown
//
// Flags: --deadline-ms=N --max-states=N --max-steps=N --max-memory-mb=N
// attach a budget to the request (for quota: become the tenant default).
//
// Output mirrors rtp_cli where the subcommands overlap (eval prints
// "N tuple(s)" then tab-joined tuples; checkfd prints satisfied/VIOLATED),
// so scripted comparisons between resident and one-shot execution are
// line-by-line. Exit codes: 0 ok / verdict holds, 1 negative verdict,
// 2 request or input error, 3 cannot connect.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.h"

namespace {

using namespace rtp;

int Usage(const char* detail = nullptr) {
  if (detail != nullptr) std::fprintf(stderr, "error: %s\n", detail);
  std::fprintf(
      stderr,
      "usage: rtpd_client --socket=PATH <command> [args]\n"
      "  load    <tenant> <doc-name> <xml-file>\n"
      "  eval    <tenant> <doc-name> <pattern-file>\n"
      "  checkfd <tenant> <doc-name> <fd-file>\n"
      "  matrix  <tenant> <fd-file>[,...] <class-file>[,...] [schema-file]\n"
      "  stats\n"
      "  drop    <tenant> <doc-name>\n"
      "  quota   <tenant>\n"
      "  shutdown\n"
      "flags: --deadline-ms=N --max-states=N --max-steps=N "
      "--max-memory-mb=N\n");
  return 2;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    parts.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

#define CLIENT_ASSIGN(lhs, expr)                        \
  auto lhs##_or = (expr);                               \
  if (!lhs##_or.ok()) {                                 \
    std::fprintf(stderr, "error: %s\n",                 \
                 lhs##_or.status().ToString().c_str()); \
    return 2;                                           \
  }                                                     \
  auto lhs = std::move(lhs##_or).value();

int64_t ParseCountFlag(const char* arg, const char* prefix) {
  const char* value = arg + std::strlen(prefix);
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (*value == '\0' || *end != '\0' || parsed < 0) return -1;
  return parsed;
}

int CmdLoad(serve::Client& client, const serve::CallOptions& options,
            const std::vector<std::string>& args) {
  if (args.size() != 3) return Usage("load takes <tenant> <doc> <xml-file>");
  CLIENT_ASSIGN(xml_text, ReadFile(args[2]));
  Status status = client.Load(args[0], args[1], xml_text, options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 2;
  }
  std::printf("loaded %s\n", args[1].c_str());
  return 0;
}

int CmdEval(serve::Client& client, const serve::CallOptions& options,
            const std::vector<std::string>& args) {
  if (args.size() != 3) {
    return Usage("eval takes <tenant> <doc> <pattern-file>");
  }
  CLIENT_ASSIGN(pattern_text, ReadFile(args[2]));
  CLIENT_ASSIGN(result, client.Eval(args[0], args[1], pattern_text, options));
  std::printf("%zu tuple(s)\n", result.tuples.size());
  for (const auto& tuple : result.tuples) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i ? "\t" : "", tuple[i].c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int CmdCheckFd(serve::Client& client, const serve::CallOptions& options,
               const std::vector<std::string>& args) {
  if (args.size() != 3) return Usage("checkfd takes <tenant> <doc> <fd-file>");
  CLIENT_ASSIGN(fd_text, ReadFile(args[2]));
  CLIENT_ASSIGN(result, client.CheckFd(args[0], args[1], fd_text, options));
  std::printf("%s (%lld mappings, %lld groups)\n",
              result.satisfied ? "satisfied" : "VIOLATED",
              static_cast<long long>(result.mappings),
              static_cast<long long>(result.groups));
  if (!result.satisfied) std::printf("%s", result.violation.c_str());
  return result.satisfied ? 0 : 1;
}

int CmdMatrix(serve::Client& client, const serve::CallOptions& options,
              const std::vector<std::string>& args) {
  if (args.size() != 3 && args.size() != 4) {
    return Usage("matrix takes <tenant> <fd-files> <class-files> "
                 "[schema-file]");
  }
  std::vector<std::string> fd_texts;
  for (const std::string& path : SplitCommaList(args[1])) {
    CLIENT_ASSIGN(text, ReadFile(path));
    fd_texts.push_back(std::move(text));
  }
  std::vector<std::string> class_texts;
  for (const std::string& path : SplitCommaList(args[2])) {
    CLIENT_ASSIGN(text, ReadFile(path));
    class_texts.push_back(std::move(text));
  }
  std::string schema_text;
  if (args.size() == 4) {
    CLIENT_ASSIGN(text, ReadFile(args[3]));
    schema_text = std::move(text);
  }
  CLIENT_ASSIGN(result, client.Matrix(args[0], fd_texts, class_texts,
                                      schema_text, options));
  size_t over_budget = 0;
  for (const serve::MatrixCell& cell : result.cells) {
    std::printf("fd %zu x class %zu: %s", cell.fd_index, cell.class_index,
                cell.independent ? "independent" : "dependent?");
    if (cell.status != StatusCode::kOk) {
      std::printf(" (%s)", StatusCodeName(cell.status));
      ++over_budget;
    }
    std::printf("\n");
  }
  std::printf("%zu/%zu pair(s) independent\n", result.independent,
              result.cells.size());
  if (over_budget > 0) {
    std::printf("%zu pair(s) over budget\n", over_budget);
  }
  return result.independent == result.cells.size() ? 0 : 1;
}

int CmdStats(serve::Client& client) {
  CLIENT_ASSIGN(stats, client.Stats());
  for (const serve::TenantStats& tenant : stats) {
    std::printf(
        "%s: %lld doc(s), %lld request(s), %lld error(s), %lld trip(s)\n",
        tenant.name.c_str(), static_cast<long long>(tenant.docs),
        static_cast<long long>(tenant.requests),
        static_cast<long long>(tenant.errors),
        static_cast<long long>(tenant.trips));
  }
  return 0;
}

int CmdDrop(serve::Client& client, const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage("drop takes <tenant> <doc>");
  CLIENT_ASSIGN(dropped, client.Drop(args[0], args[1]));
  std::printf("%s\n", dropped ? "dropped" : "not found");
  return dropped ? 0 : 1;
}

int CmdQuota(serve::Client& client, const serve::CallOptions& options,
             const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage("quota takes <tenant>");
  Status status = client.Quota(args[0], options.budget);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 2;
  }
  std::printf("quota set\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  serve::CallOptions options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      socket_path = arg + 9;
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      options.budget.deadline_ms = ParseCountFlag(arg, "--deadline-ms=");
      if (options.budget.deadline_ms < 0) {
        return Usage("--deadline-ms requires a nonnegative integer");
      }
    } else if (std::strncmp(arg, "--max-states=", 13) == 0) {
      options.budget.max_automaton_states =
          ParseCountFlag(arg, "--max-states=");
      if (options.budget.max_automaton_states < 0) {
        return Usage("--max-states requires a nonnegative integer");
      }
    } else if (std::strncmp(arg, "--max-steps=", 12) == 0) {
      options.budget.max_steps = ParseCountFlag(arg, "--max-steps=");
      if (options.budget.max_steps < 0) {
        return Usage("--max-steps requires a nonnegative integer");
      }
    } else if (std::strncmp(arg, "--max-memory-mb=", 16) == 0) {
      int64_t mb = ParseCountFlag(arg, "--max-memory-mb=");
      if (mb < 0) return Usage("--max-memory-mb requires a nonnegative integer");
      options.budget.max_memory_bytes = mb << 20;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      return Usage(("unknown flag '" + std::string(arg) + "'").c_str());
    } else {
      args.emplace_back(arg);
    }
  }
  if (socket_path.empty()) return Usage("--socket is required");
  if (args.empty()) return Usage();

  auto client_or = serve::Client::Connect(socket_path);
  if (!client_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 client_or.status().ToString().c_str());
    return 3;
  }
  serve::Client client = std::move(client_or).value();

  const std::string cmd = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  if (cmd == "load") return CmdLoad(client, options, rest);
  if (cmd == "eval") return CmdEval(client, options, rest);
  if (cmd == "checkfd") return CmdCheckFd(client, options, rest);
  if (cmd == "matrix") return CmdMatrix(client, options, rest);
  if (cmd == "stats") return CmdStats(client);
  if (cmd == "drop") return CmdDrop(client, rest);
  if (cmd == "quota") return CmdQuota(client, options, rest);
  if (cmd == "shutdown") {
    Status status = client.Shutdown();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 2;
    }
    std::printf("shutting down\n");
    return 0;
  }
  return Usage(("unknown command '" + cmd + "'").c_str());
}
