#!/usr/bin/env python3
"""Render rtp_cli --profile JSON as a readable report.

usage: tools/profile_report.py [profile.json]        (default: stdin)
       tools/profile_report.py --top-counters=N ...

Reads the JSON array written by `rtp_cli --profile=<file>` (one
QueryProfile object per operation) and prints, per operation: the phase
tree with durations and percent-of-wall, the largest counter deltas, the
histogram deltas, and guard-budget consumption. Pure stdlib, no
dependencies.
"""

import argparse
import json
import sys


def fmt_ns(ns):
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.3f} us"
    return f"{ns} ns"


def pct(part, whole):
    return f"{100.0 * part / whole:5.1f}%" if whole else "    -"


def render_profile(p, top_counters, out):
    wall = p.get("wall_ns", 0)
    status = p.get("status", "OK")
    out.write(f"{p.get('op', '?')}  wall={fmt_ns(wall)}  status={status}\n")

    phases = p.get("phases", [])
    root_total = sum(ph["dur_ns"] for ph in phases if ph.get("parent", -1) == -1)
    for ph in phases:
        indent = "  " * (ph.get("depth", 0) + 1)
        out.write(
            f"{indent}{ph['name']:<32} {fmt_ns(ph['dur_ns']):>12}"
            f"  {pct(ph['dur_ns'], wall)}\n"
        )
    if phases:
        unattributed = wall - root_total
        out.write(
            f"  (root phases cover {pct(root_total, wall).strip()} of wall,"
            f" {fmt_ns(max(unattributed, 0))} unattributed)\n"
        )

    counters = sorted(
        p.get("counters", {}).items(), key=lambda kv: kv[1], reverse=True
    )
    if counters:
        out.write("  counters (largest deltas):\n")
        for name, value in counters[:top_counters]:
            out.write(f"    {name:<40} {value}\n")
        if len(counters) > top_counters:
            out.write(f"    ... {len(counters) - top_counters} more\n")

    for name, h in sorted(p.get("histograms", {}).items()):
        out.write(
            f"  histogram {name}: count={h['count']} sum={h['sum']}"
            f" p50={h['p50']} p99={h['p99']}\n"
        )

    guard = p.get("guard", {})
    if guard.get("guarded"):
        budget = guard.get("budget", {})

        def used(v, limit):
            return f"{v}/{limit if limit else 'inf'}"

        out.write(
            "  guard: steps="
            + used(guard.get("steps", 0), budget.get("max_steps", 0))
            + " states="
            + used(guard.get("states", 0), budget.get("max_states", 0))
            + " memory="
            + used(guard.get("memory_bytes", 0),
                   budget.get("max_memory_bytes", 0))
            + f" deadline_ms={budget.get('deadline_ms', 0) or 'inf'}\n"
        )
    out.write("\n")


def main():
    parser = argparse.ArgumentParser(
        description="Render rtp_cli --profile JSON as a readable report."
    )
    parser.add_argument("profile", nargs="?", help="profile JSON (default stdin)")
    parser.add_argument(
        "--top-counters", type=int, default=10,
        help="counters to show per operation (default 10)",
    )
    args = parser.parse_args()

    if args.profile:
        with open(args.profile) as f:
            profiles = json.load(f)
    else:
        profiles = json.load(sys.stdin)
    if not isinstance(profiles, list):
        profiles = [profiles]

    if not profiles:
        print("no profiles recorded")
        return 0
    total_wall = sum(p.get("wall_ns", 0) for p in profiles)
    print(f"{len(profiles)} operation(s), total wall {fmt_ns(total_wall)}\n")
    for p in profiles:
        render_profile(p, args.top_counters, sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
