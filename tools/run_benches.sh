#!/usr/bin/env bash
# Runs every bench_* binary in a build tree and concatenates their JSON
# result lines into BENCH_pr10.json (one JSON object per line) — a
# committed baseline tools/bench_compare.py can read.
#
# usage: tools/run_benches.sh [build-dir] [output-file] [extra bench args...]
#
#   build-dir    defaults to ./build
#   output-file  defaults to ./BENCH_pr10.json
#   extra args   passed through to every binary, e.g.
#                --benchmark_filter=BM_EnumerateR2 --benchmark_min_time=0.1x
set -euo pipefail

build_dir="${1:-build}"
out_file="${2:-BENCH_pr10.json}"
shift $(( $# > 2 ? 2 : $# )) || true

bench_dir="$build_dir/bench"
if [ ! -d "$bench_dir" ]; then
  echo "error: '$bench_dir' not found — build first: cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

found=0
for bin in "$bench_dir"/bench_*; do
  [ -x "$bin" ] || continue
  found=1
  echo "== $(basename "$bin")" >&2
  RTP_BENCH_JSON="$tmp" "$bin" "$@" >&2
done

if [ "$found" = 0 ]; then
  echo "error: no bench_* binaries under '$bench_dir'" >&2
  exit 1
fi

# When the tree has the daemon and the load harness, append an rtp_load
# pass over the committed smoke workload spec against a real rtpd — the
# rtp_load/smoke/... per-node lines land in the same baseline file (see
# docs/WORKLOADS.md).
if [ -x "$build_dir/tools/rtpd" ] && [ -x "$build_dir/tools/rtp_load" ]; then
  echo "== rtp_load (examples/workloads/smoke.json)" >&2
  workdir="$(mktemp -d)"
  sock="$workdir/rtpd.sock"
  "$build_dir/tools/rtpd" --socket="$sock" --jobs=4 &
  rtpd_pid=$!
  for i in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
  if [ -S "$sock" ]; then
    source_dir="$(cd "$(dirname "$0")/.." && pwd)"
    "$build_dir/tools/rtp_load" \
      --spec="$source_dir/examples/workloads/smoke.json" \
      --socket="$sock" --threads=4 --seed=42 --out="$tmp" >&2
  else
    echo "warning: rtpd did not come up — skipping rtp_load lines" >&2
  fi
  kill "$rtpd_pid" 2>/dev/null || true
  wait "$rtpd_pid" 2>/dev/null || true
  rm -rf "$workdir"
fi

mv "$tmp" "$out_file"
trap - EXIT
echo "wrote $(wc -l < "$out_file") result lines to $out_file" >&2
