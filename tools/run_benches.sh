#!/usr/bin/env bash
# Runs every bench_* binary in a build tree and concatenates their JSON
# result lines into BENCH_pr7.json (one JSON object per line) — a
# committed baseline tools/bench_compare.py can read.
#
# usage: tools/run_benches.sh [build-dir] [output-file] [extra bench args...]
#
#   build-dir    defaults to ./build
#   output-file  defaults to ./BENCH_pr7.json
#   extra args   passed through to every binary, e.g.
#                --benchmark_filter=BM_EnumerateR2 --benchmark_min_time=0.1x
set -euo pipefail

build_dir="${1:-build}"
out_file="${2:-BENCH_pr7.json}"
shift $(( $# > 2 ? 2 : $# )) || true

bench_dir="$build_dir/bench"
if [ ! -d "$bench_dir" ]; then
  echo "error: '$bench_dir' not found — build first: cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

found=0
for bin in "$bench_dir"/bench_*; do
  [ -x "$bin" ] || continue
  found=1
  echo "== $(basename "$bin")" >&2
  RTP_BENCH_JSON="$tmp" "$bin" "$@" >&2
done

if [ "$found" = 0 ]; then
  echo "error: no bench_* binaries under '$bench_dir'" >&2
  exit 1
fi

mv "$tmp" "$out_file"
trap - EXIT
echo "wrote $(wc -l < "$out_file") result lines to $out_file" >&2
