// rtp_load — declarative load harness for rtpd (docs/WORKLOADS.md).
//
//   rtp_load --spec=FILE --socket=PATH [--threads=N] [--seed=S]
//            [--duration-s=D] [--target-rate=R] [--out=FILE]
//            [--counts-out=FILE] [--allow-errors] [--quiet]
//
// Parses a JSON workload spec (examples/workloads/), drives the rtpd
// socket closed-loop with N client threads (open-loop at --target-rate
// ops/sec), and reports per-node count / mean / min / max / stddev /
// p50 / p99 latency. --out writes bench-JSON lines compatible with
// tools/bench_compare.py; --counts-out writes the sorted per-node op
// counts (plus per-node fault-injection counts under chaos) the load and
// chaos CI legs diff between two same-seed runs.
//
// Exit codes (docs/ROBUSTNESS.md): 0 clean run; 1 when the run completed
// but some responses carried op-level error statuses, or executed zero
// ops; 2 for transport failures (UNAVAILABLE / TRANSPORT_ERROR surviving
// the client's retries) and for usage, spec, or connection errors. The
// first failing node and its status are always printed. --allow-errors
// relaxes 1 and 2 back to 0 when the run itself completed with ops > 0 —
// the chaos CI leg uses it, since injected faults are supposed to surface
// as structured errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "workload/runner.h"
#include "workload/spec.h"

namespace {

int Usage(const char* detail = nullptr) {
  if (detail != nullptr) std::fprintf(stderr, "error: %s\n", detail);
  std::fprintf(
      stderr,
      "usage: rtp_load --spec=FILE --socket=PATH [flags]\n"
      "flags: --threads=N      client threads (default 4)\n"
      "       --seed=S         root seed; same spec+seed+threads => same\n"
      "                        per-thread op sequence (default 42)\n"
      "       --duration-s=D   wall-clock cap; 0 = run spec to completion\n"
      "       --target-rate=R  open-loop target ops/sec across threads;\n"
      "                        0 = closed loop (default)\n"
      "       --out=FILE       append bench-JSON result lines\n"
      "       --counts-out=FILE  write sorted per-node op counts\n"
      "       --allow-errors   exit 0 despite op/transport errors as long\n"
      "                        as the run completed with ops > 0\n"
      "       --quiet          suppress the human summary\n");
  return 2;
}

bool WriteFileOrComplain(const std::string& path, const std::string& content,
                         bool append) {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  std::string counts_path;
  bool quiet = false;
  bool allow_errors = false;
  rtp::workload::RunnerOptions options;
  options.threads = 4;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto parse_count = [arg](const char* prefix) -> long long {
      const char* value = arg + std::strlen(prefix);
      char* end = nullptr;
      long long parsed = std::strtoll(value, &end, 10);
      if (*value == '\0' || *end != '\0' || parsed < 0) return -1;
      return parsed;
    };
    auto parse_double = [arg](const char* prefix) -> double {
      const char* value = arg + std::strlen(prefix);
      char* end = nullptr;
      double parsed = std::strtod(value, &end);
      if (*value == '\0' || *end != '\0' || parsed < 0) return -1;
      return parsed;
    };
    if (std::strncmp(arg, "--spec=", 7) == 0) {
      spec_path = arg + 7;
    } else if (std::strncmp(arg, "--socket=", 9) == 0) {
      options.socket_path = arg + 9;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      long long threads = parse_count("--threads=");
      if (threads < 1 || threads > 1024) {
        return Usage("--threads requires an integer in [1, 1024]");
      }
      options.threads = static_cast<int>(threads);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      long long seed = parse_count("--seed=");
      if (seed < 0) return Usage("--seed requires a nonnegative integer");
      options.seed = static_cast<uint64_t>(seed);
    } else if (std::strncmp(arg, "--duration-s=", 13) == 0) {
      options.duration_s = parse_double("--duration-s=");
      if (options.duration_s < 0) {
        return Usage("--duration-s requires a nonnegative number");
      }
    } else if (std::strncmp(arg, "--target-rate=", 14) == 0) {
      options.target_rate = parse_double("--target-rate=");
      if (options.target_rate < 0) {
        return Usage("--target-rate requires a nonnegative number");
      }
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--counts-out=", 13) == 0) {
      counts_path = arg + 13;
    } else if (std::strcmp(arg, "--allow-errors") == 0) {
      allow_errors = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      return Usage(("unknown flag '" + std::string(arg) + "'").c_str());
    }
  }
  if (spec_path.empty()) return Usage("--spec is required");
  if (options.socket_path.empty()) return Usage("--socket is required");

  auto spec_or = rtp::workload::LoadWorkloadSpecFile(spec_path);
  if (!spec_or.ok()) {
    std::fprintf(stderr, "error: %s\n", spec_or.status().ToString().c_str());
    return 2;
  }
  const rtp::workload::WorkloadSpec& spec = *spec_or;

  auto result_or = rtp::workload::RunWorkload(spec, options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 result_or.status().ToString().c_str());
    return 2;
  }
  const rtp::workload::RunResult& result = *result_or;

  if (!quiet) {
    std::fputs(result.stats
                   .ToText(spec.name, options.threads, options.seed,
                           result.elapsed_s)
                   .c_str(),
               stdout);
    if (result.truncated) {
      std::fputs("note: run truncated by --duration-s; per-node counts are "
                 "not seed-reproducible\n",
                 stdout);
    }
  }
  if (!out_path.empty() &&
      !WriteFileOrComplain(out_path,
                           result.stats.ToBenchJsonLines(
                               spec.name, options.threads, result.elapsed_s),
                           /*append=*/true)) {
    return 2;
  }
  if (!counts_path.empty() &&
      !WriteFileOrComplain(counts_path, result.stats.ToCountsText(),
                           /*append=*/false)) {
    return 2;
  }

  if (result.faults_injected > 0 && !quiet) {
    std::fprintf(stdout,
                 "chaos: %llu faults injected, %llu transport errors "
                 "surfaced\n",
                 static_cast<unsigned long long>(result.faults_injected),
                 static_cast<unsigned long long>(result.transport_errors));
  }
  if (!result.first_error_node.empty()) {
    std::fprintf(stderr, "first failed node: %s (%s)\n",
                 result.first_error_node.c_str(),
                 result.first_error.ToString().c_str());
  }
  if (result.ops == 0) {
    // Even --allow-errors insists on traffic: a silent empty run is a
    // harness bug, not a tolerable fault outcome.
    std::fprintf(stderr, "error: workload executed zero ops\n");
    return 1;
  }
  if (result.transport_errors != 0) {
    std::fprintf(stderr,
                 "error: %llu of %llu ops failed at the transport layer\n",
                 static_cast<unsigned long long>(result.transport_errors),
                 static_cast<unsigned long long>(result.ops));
    return allow_errors ? 0 : 2;
  }
  if (result.errors != 0) {
    std::fprintf(stderr,
                 "error: %llu of %llu ops returned an error status\n",
                 static_cast<unsigned long long>(result.errors),
                 static_cast<unsigned long long>(result.ops));
    return allow_errors ? 0 : 1;
  }
  return 0;
}
